//! Indexed triangle meshes and 2D feature texture maps — the dominant scene
//! representation of mesh-based pipelines (Sec. II-A).
//!
//! Meshes store (1) vertex coordinates and (2) vertex indices per triangle;
//! appearance lives in 2D texture maps addressed through per-vertex UVs,
//! matching MobileNeRF-style baked representations.

use serde::{Deserialize, Serialize};
use uni_geometry::{interp, Aabb, Vec2, Vec3};

/// A 2D feature texture: `width × height` texels of `channels` floats.
///
/// Channel count beyond 3 carries the learned features MobileNeRF-style
/// pipelines feed to their deferred MLP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Texture2d {
    width: u32,
    height: u32,
    channels: u32,
    data: Vec<f32>,
}

impl Texture2d {
    /// Creates a zero-filled texture.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(width: u32, height: u32, channels: u32) -> Self {
        assert!(
            width > 0 && height > 0 && channels > 0,
            "texture dims must be positive"
        );
        Self {
            width,
            height,
            channels,
            data: vec![0.0; (width * height * channels) as usize],
        }
    }

    /// Texture width in texels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Texture height in texels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Feature channels per texel.
    pub fn channels(&self) -> u32 {
        self.channels
    }

    /// Total bytes when stored as 8-bit quantized texels (the on-disk /
    /// DRAM format mesh pipelines use).
    pub fn storage_bytes(&self) -> u64 {
        u64::from(self.width) * u64::from(self.height) * u64::from(self.channels)
    }

    fn texel_index(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height);
        ((y * self.width + x) * self.channels) as usize
    }

    /// Writes all channels of texel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds coordinates or channel-count mismatch.
    pub fn set_texel(&mut self, x: u32, y: u32, values: &[f32]) {
        assert!(x < self.width && y < self.height, "texel out of bounds");
        assert_eq!(values.len() as u32, self.channels, "channel count mismatch");
        let i = self.texel_index(x, y);
        self.data[i..i + values.len()].copy_from_slice(values);
    }

    /// Reads all channels of texel `(x, y)`.
    pub fn texel(&self, x: u32, y: u32) -> &[f32] {
        let i = self.texel_index(x.min(self.width - 1), y.min(self.height - 1));
        &self.data[i..i + self.channels as usize]
    }

    /// Bilinear fetch at UV coordinates in `[0, 1]²` — the texture-indexing
    /// step of Fig. 2. Fills `out` (length = channels).
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the channel count.
    pub fn sample_bilinear(&self, uv: Vec2, out: &mut [f32]) {
        assert_eq!(out.len() as u32, self.channels, "output width mismatch");
        let (corners, w) = self.bilinear_corners(uv);
        for (c, o) in out.iter_mut().enumerate() {
            *o = corners.iter().zip(&w).map(|(t, wi)| t[c] * wi).sum();
        }
    }

    /// Like [`Texture2d::sample_bilinear`], but *adds* the fetched
    /// features onto `out` instead of overwriting it — the channel-wise
    /// aggregation step of decomposed-grid indexing, without a caller-side
    /// staging buffer. The per-channel corner sum is computed exactly as
    /// in `sample_bilinear`, so `accumulate == sample-then-add` bit for
    /// bit.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the channel count.
    pub fn accumulate_bilinear(&self, uv: Vec2, out: &mut [f32]) {
        assert_eq!(out.len() as u32, self.channels, "output width mismatch");
        let (corners, w) = self.bilinear_corners(uv);
        for (c, o) in out.iter_mut().enumerate() {
            *o += corners.iter().zip(&w).map(|(t, wi)| t[c] * wi).sum::<f32>();
        }
    }

    /// The four texels and bilinear weights around `uv`.
    fn bilinear_corners(&self, uv: Vec2) -> ([&[f32]; 4], [f32; 4]) {
        let cx = interp::cell_coord(uv.x, self.width.max(2));
        let cy = interp::cell_coord(uv.y, self.height.max(2));
        let w = interp::bilinear_weights(cx.frac, cy.frac);
        let (x0, y0) = (cx.base as u32, cy.base as u32);
        let corners = [
            self.texel(x0, y0),
            self.texel(x0 + 1, y0),
            self.texel(x0, y0 + 1),
            self.texel(x0 + 1, y0 + 1),
        ];
        (corners, w)
    }
}

/// An indexed triangle mesh with UVs.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TriangleMesh {
    /// Vertex positions.
    pub positions: Vec<Vec3>,
    /// Per-vertex texture coordinates.
    pub uvs: Vec<Vec2>,
    /// Triangle vertex indices, three per triangle.
    pub indices: Vec<u32>,
}

impl TriangleMesh {
    /// Creates an empty mesh.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of triangles.
    pub fn triangle_count(&self) -> usize {
        self.indices.len() / 3
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.positions.len()
    }

    /// The three corner positions of triangle `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn triangle(&self, t: usize) -> [Vec3; 3] {
        let i = t * 3;
        [
            self.positions[self.indices[i] as usize],
            self.positions[self.indices[i + 1] as usize],
            self.positions[self.indices[i + 2] as usize],
        ]
    }

    /// The three corner UVs of triangle `t`.
    pub fn triangle_uvs(&self, t: usize) -> [Vec2; 3] {
        let i = t * 3;
        [
            self.uvs[self.indices[i] as usize],
            self.uvs[self.indices[i + 1] as usize],
            self.uvs[self.indices[i + 2] as usize],
        ]
    }

    /// Geometric normal of triangle `t` (right-handed winding).
    pub fn triangle_normal(&self, t: usize) -> Vec3 {
        let [a, b, c] = self.triangle(t);
        (b - a).cross(c - a).normalized()
    }

    /// Surface area of triangle `t`.
    pub fn triangle_area(&self, t: usize) -> f32 {
        let [a, b, c] = self.triangle(t);
        (b - a).cross(c - a).length() * 0.5
    }

    /// Bounding box of all vertices.
    pub fn bounds(&self) -> Aabb {
        Aabb::from_points(self.positions.iter().copied())
    }

    /// Appends another mesh (indices are re-based).
    pub fn append(&mut self, other: &TriangleMesh) {
        let base = self.positions.len() as u32;
        self.positions.extend_from_slice(&other.positions);
        self.uvs.extend_from_slice(&other.uvs);
        self.indices.extend(other.indices.iter().map(|i| i + base));
    }

    /// Bytes per triangle record as streamed by the rasterizer's Geometric
    /// Processing micro-op: 3 vertices × (xyz + uv) × 4 B ≈ 60 B, padded to
    /// 64 for alignment.
    pub const BYTES_PER_TRIANGLE: u32 = 64;

    /// Storage bytes of the geometry (positions f32, uvs f16, u32 indices).
    pub fn storage_bytes(&self) -> u64 {
        self.positions.len() as u64 * 12 + self.uvs.len() as u64 * 4 + self.indices.len() as u64 * 4
    }

    /// Builds a UV sphere.
    pub fn uv_sphere(center: Vec3, radius: f32, rings: u32, segments: u32) -> Self {
        assert!(
            rings >= 2 && segments >= 3,
            "sphere needs >=2 rings, >=3 segments"
        );
        let mut mesh = Self::new();
        for r in 0..=rings {
            let v = r as f32 / rings as f32;
            let theta = v * std::f32::consts::PI;
            for s in 0..=segments {
                let u = s as f32 / segments as f32;
                let phi = u * std::f32::consts::TAU;
                let dir = Vec3::new(
                    theta.sin() * phi.cos(),
                    theta.cos(),
                    theta.sin() * phi.sin(),
                );
                mesh.positions.push(center + dir * radius);
                mesh.uvs.push(Vec2::new(u, v));
            }
        }
        let stride = segments + 1;
        for r in 0..rings {
            for s in 0..segments {
                let i0 = r * stride + s;
                let i1 = i0 + 1;
                let i2 = i0 + stride;
                let i3 = i2 + 1;
                mesh.indices.extend_from_slice(&[i0, i1, i2, i1, i3, i2]);
            }
        }
        mesh
    }

    /// Builds an axis-aligned box with per-face UVs; `subdiv` splits each
    /// face into `subdiv × subdiv` quads.
    pub fn cuboid(center: Vec3, half: Vec3, subdiv: u32) -> Self {
        assert!(subdiv >= 1);
        let mut mesh = Self::new();
        // (normal axis, sign) for the six faces.
        let faces: [(usize, f32); 6] = [
            (0, 1.0),
            (0, -1.0),
            (1, 1.0),
            (1, -1.0),
            (2, 1.0),
            (2, -1.0),
        ];
        for (axis, sign) in faces {
            let (ua, va) = match axis {
                0 => (1, 2),
                1 => (0, 2),
                _ => (0, 1),
            };
            let base = mesh.positions.len() as u32;
            for j in 0..=subdiv {
                for i in 0..=subdiv {
                    let fu = i as f32 / subdiv as f32;
                    let fv = j as f32 / subdiv as f32;
                    let mut p = [0f32; 3];
                    p[axis] = sign * half[axis];
                    p[ua] = (fu * 2.0 - 1.0) * half[ua];
                    p[va] = (fv * 2.0 - 1.0) * half[va];
                    mesh.positions.push(center + Vec3::new(p[0], p[1], p[2]));
                    mesh.uvs.push(Vec2::new(fu, fv));
                }
            }
            let stride = subdiv + 1;
            for j in 0..subdiv {
                for i in 0..subdiv {
                    let i0 = base + j * stride + i;
                    let i1 = i0 + 1;
                    let i2 = i0 + stride;
                    let i3 = i2 + 1;
                    if sign > 0.0 {
                        mesh.indices.extend_from_slice(&[i0, i1, i2, i1, i3, i2]);
                    } else {
                        mesh.indices.extend_from_slice(&[i0, i2, i1, i1, i2, i3]);
                    }
                }
            }
        }
        mesh
    }

    /// Builds a horizontal ground plane grid at height `level` spanning
    /// `[-extent, extent]²` with `cells × cells` quads.
    pub fn ground_plane(level: f32, extent: f32, cells: u32) -> Self {
        assert!(cells >= 1);
        let mut mesh = Self::new();
        for j in 0..=cells {
            for i in 0..=cells {
                let fu = i as f32 / cells as f32;
                let fv = j as f32 / cells as f32;
                mesh.positions.push(Vec3::new(
                    (fu * 2.0 - 1.0) * extent,
                    level,
                    (fv * 2.0 - 1.0) * extent,
                ));
                mesh.uvs.push(Vec2::new(fu, fv));
            }
        }
        let stride = cells + 1;
        for j in 0..cells {
            for i in 0..cells {
                let i0 = j * stride + i;
                let i1 = i0 + 1;
                let i2 = i0 + stride;
                let i3 = i2 + 1;
                mesh.indices.extend_from_slice(&[i0, i1, i2, i1, i3, i2]);
            }
        }
        mesh
    }

    /// Builds a capped vertical cylinder.
    pub fn cylinder(center: Vec3, radius: f32, half_height: f32, segments: u32) -> Self {
        assert!(segments >= 3);
        let mut mesh = Self::new();
        // Side wall.
        for ring in 0..2 {
            let y = if ring == 0 { -half_height } else { half_height };
            for s in 0..=segments {
                let u = s as f32 / segments as f32;
                let phi = u * std::f32::consts::TAU;
                mesh.positions
                    .push(center + Vec3::new(phi.cos() * radius, y, phi.sin() * radius));
                mesh.uvs.push(Vec2::new(u, ring as f32));
            }
        }
        let stride = segments + 1;
        for s in 0..segments {
            let i0 = s;
            let i1 = s + 1;
            let i2 = s + stride;
            let i3 = i2 + 1;
            mesh.indices.extend_from_slice(&[i0, i2, i1, i1, i2, i3]);
        }
        // Caps (fan around center vertices).
        for (cap, y) in [(0u32, -half_height), (1u32, half_height)] {
            let center_idx = mesh.positions.len() as u32;
            mesh.positions.push(center + Vec3::new(0.0, y, 0.0));
            mesh.uvs.push(Vec2::new(0.5, 0.5));
            let ring_base = mesh.positions.len() as u32;
            for s in 0..=segments {
                let phi = s as f32 / segments as f32 * std::f32::consts::TAU;
                mesh.positions
                    .push(center + Vec3::new(phi.cos() * radius, y, phi.sin() * radius));
                mesh.uvs
                    .push(Vec2::new(0.5 + phi.cos() * 0.5, 0.5 + phi.sin() * 0.5));
            }
            for s in 0..segments {
                let a = ring_base + s;
                let b = ring_base + s + 1;
                if cap == 1 {
                    mesh.indices.extend_from_slice(&[center_idx, a, b]);
                } else {
                    mesh.indices.extend_from_slice(&[center_idx, b, a]);
                }
            }
        }
        mesh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn texture_set_get_round_trip() {
        let mut t = Texture2d::new(4, 4, 3);
        t.set_texel(1, 2, &[0.1, 0.2, 0.3]);
        assert_eq!(t.texel(1, 2), &[0.1, 0.2, 0.3]);
        assert_eq!(t.texel(0, 0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn texture_bilinear_interpolates_between_texels() {
        let mut t = Texture2d::new(2, 2, 1);
        t.set_texel(0, 0, &[0.0]);
        t.set_texel(1, 0, &[1.0]);
        t.set_texel(0, 1, &[0.0]);
        t.set_texel(1, 1, &[1.0]);
        let mut out = [0f32];
        t.sample_bilinear(Vec2::new(0.5, 0.5), &mut out);
        assert!((out[0] - 0.5).abs() < 1e-5);
        t.sample_bilinear(Vec2::new(0.0, 0.0), &mut out);
        assert!(out[0].abs() < 1e-5);
        t.sample_bilinear(Vec2::new(1.0, 1.0), &mut out);
        assert!((out[0] - 1.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "texel out of bounds")]
    fn texture_set_out_of_bounds_panics() {
        let mut t = Texture2d::new(2, 2, 1);
        t.set_texel(2, 0, &[1.0]);
    }

    #[test]
    fn sphere_vertices_lie_on_radius() {
        let m = TriangleMesh::uv_sphere(Vec3::new(1.0, 2.0, 3.0), 2.0, 8, 12);
        for p in &m.positions {
            let r = (*p - Vec3::new(1.0, 2.0, 3.0)).length();
            assert!((r - 2.0).abs() < 1e-4, "{r}");
        }
        assert_eq!(m.triangle_count(), (8 * 12 * 2) as usize);
    }

    #[test]
    fn sphere_normals_point_outward_mostly() {
        let m = TriangleMesh::uv_sphere(Vec3::ZERO, 1.0, 12, 16);
        let mut outward = 0usize;
        let mut total = 0usize;
        let mean_area: f32 = (0..m.triangle_count())
            .map(|t| m.triangle_area(t))
            .sum::<f32>()
            / m.triangle_count() as f32;
        for t in 0..m.triangle_count() {
            if m.triangle_area(t) < mean_area * 0.05 {
                continue; // Degenerate pole slivers have unstable normals.
            }
            let n = m.triangle_normal(t);
            let [a, b, c] = m.triangle(t);
            let centroid = (a + b + c) / 3.0;
            total += 1;
            if n.dot(centroid.normalized()) > 0.0 {
                outward += 1;
            }
        }
        assert!(outward == total, "{outward}/{total} triangles outward");
    }

    #[test]
    fn cuboid_bounds_match_half_extents() {
        let m = TriangleMesh::cuboid(Vec3::ZERO, Vec3::new(1.0, 2.0, 3.0), 2);
        let b = m.bounds();
        assert!((b.min - Vec3::new(-1.0, -2.0, -3.0)).length() < 1e-5);
        assert!((b.max - Vec3::new(1.0, 2.0, 3.0)).length() < 1e-5);
        assert_eq!(m.triangle_count(), 6 * 2 * 2 * 2);
    }

    #[test]
    fn cuboid_total_area_matches_analytic() {
        let (hx, hy, hz) = (1.0f32, 0.5, 2.0);
        let m = TriangleMesh::cuboid(Vec3::ZERO, Vec3::new(hx, hy, hz), 3);
        let area: f32 = (0..m.triangle_count()).map(|t| m.triangle_area(t)).sum();
        let analytic = 8.0 * (hx * hy + hy * hz + hx * hz);
        assert!((area - analytic).abs() < 1e-3, "{area} vs {analytic}");
    }

    #[test]
    fn ground_plane_is_flat() {
        let m = TriangleMesh::ground_plane(-1.5, 10.0, 4);
        assert!(m.positions.iter().all(|p| (p.y + 1.5).abs() < 1e-6));
        assert_eq!(m.triangle_count(), 32);
    }

    #[test]
    fn cylinder_wall_vertices_on_radius() {
        let m = TriangleMesh::cylinder(Vec3::ZERO, 1.5, 2.0, 16);
        // Wall vertices (the first 2*(segments+1)) lie on the radius.
        for p in m.positions.iter().take(2 * 17) {
            let r = Vec3::new(p.x, 0.0, p.z).length();
            assert!((r - 1.5).abs() < 1e-4);
        }
    }

    #[test]
    fn append_rebases_indices() {
        let mut a = TriangleMesh::uv_sphere(Vec3::ZERO, 1.0, 2, 3);
        let b = TriangleMesh::uv_sphere(Vec3::X * 5.0, 1.0, 2, 3);
        let tris_before = a.triangle_count();
        a.append(&b);
        assert_eq!(a.triangle_count(), tris_before * 2);
        let max_index = *a.indices.iter().max().expect("nonempty") as usize;
        assert!(max_index < a.vertex_count());
    }

    #[test]
    fn storage_bytes_positive_for_nonempty() {
        let m = TriangleMesh::uv_sphere(Vec3::ZERO, 1.0, 4, 6);
        assert!(m.storage_bytes() > 0);
        let t = Texture2d::new(16, 16, 8);
        assert_eq!(t.storage_bytes(), 16 * 16 * 8);
    }

    proptest! {
        /// Bilinear sampling never exceeds the texel value range.
        #[test]
        fn prop_bilinear_within_bounds(u in 0f32..=1.0, v in 0f32..=1.0, seed in 0u64..100) {
            let mut rng = uni_geometry::sampling::XorShift64::new(seed + 1);
            let mut t = Texture2d::new(4, 4, 1);
            let mut lo = f32::INFINITY;
            let mut hi = f32::NEG_INFINITY;
            for y in 0..4 {
                for x in 0..4 {
                    let val = rng.next_f32();
                    lo = lo.min(val);
                    hi = hi.max(val);
                    t.set_texel(x, y, &[val]);
                }
            }
            let mut out = [0f32];
            t.sample_bilinear(Vec2::new(u, v), &mut out);
            prop_assert!(out[0] >= lo - 1e-5 && out[0] <= hi + 1e-5);
        }
    }
}
