//! KiloNeRF-style grids of tiny MLPs — the dominant scene representation of
//! MLP-based pipelines (Sec. II-B) at the accuracy/efficiency trade-off the
//! paper benchmarks (KiloNeRF [87]).
//!
//! Space is divided into a coarse cell grid; each occupied cell is served by
//! a tiny MLP queried with positionally-encoded local coordinates. Empty
//! cells short-circuit to zero density (the occupancy skip every fast NeRF
//! implementation relies on).

use crate::field::AnalyticField;
use crate::nn::{Activation, AdamTrainer, Mlp, MlpScratch, PositionalEncoding};
use serde::{Deserialize, Serialize};
use uni_geometry::sampling::XorShift64;
use uni_geometry::{Aabb, Rgb, Vec3};

/// Sentinel for unoccupied cells.
const EMPTY: u32 = u32::MAX;

/// A grid of tiny MLPs over a bounded domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KiloNerfGrid {
    bounds: Aabb,
    resolution: u32,
    /// Cell → MLP index (or `EMPTY`), x-fastest.
    assignment: Vec<u32>,
    /// The distinct trained tiny MLPs (cells share by locality).
    mlps: Vec<Mlp>,
    encoding: PositionalEncoding,
    /// Density scale applied to the network's raw density output.
    peak_density: f32,
}

/// A density + color query result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KiloNerfSample {
    /// Volumetric density.
    pub density: f32,
    /// Radiance.
    pub color: Rgb,
}

impl KiloNerfGrid {
    /// Bakes a grid by distilling the analytic field into tiny MLPs.
    ///
    /// `resolution` is cells per axis; `mlp_count` distinct networks are
    /// trained, shared across occupied cells by spatial block; `hidden` is
    /// the tiny-MLP width; `train_steps` Adam steps per network.
    pub fn bake(
        field: &AnalyticField,
        bounds: Aabb,
        resolution: u32,
        mlp_count: u32,
        hidden: u32,
        train_steps: u32,
        rng: &mut XorShift64,
    ) -> Self {
        assert!(resolution >= 1, "grid needs at least one cell");
        assert!(mlp_count >= 1, "need at least one MLP");
        let encoding = PositionalEncoding::new(6);
        let n = resolution as usize;
        let mut assignment = vec![EMPTY; n * n * n];

        // Occupancy: a cell is occupied when the field is dense at its
        // center or any corner (conservative for thin shells).
        let cell_extent = bounds.extent() * (1.0 / resolution as f32);
        let mut occupied_cells = Vec::new();
        for z in 0..resolution {
            for y in 0..resolution {
                for x in 0..resolution {
                    let base =
                        bounds.min + Vec3::new(x as f32, y as f32, z as f32).mul_elem(cell_extent);
                    let mut dense = false;
                    'probe: for pz in 0..3 {
                        for py in 0..3 {
                            for px in 0..3 {
                                let p = base
                                    + Vec3::new(px as f32 * 0.5, py as f32 * 0.5, pz as f32 * 0.5)
                                        .mul_elem(cell_extent);
                                if field.density(p) > 0.5 {
                                    dense = true;
                                    break 'probe;
                                }
                            }
                        }
                    }
                    if dense {
                        occupied_cells.push((x, y, z));
                    }
                }
            }
        }

        // Assign occupied cells to MLPs by coarse spatial block so each
        // network serves a contiguous region (mirrors KiloNeRF locality).
        let blocks_per_axis = (mlp_count as f32).cbrt().ceil() as u32;
        for &(x, y, z) in &occupied_cells {
            let bx = x * blocks_per_axis / resolution;
            let by = y * blocks_per_axis / resolution;
            let bz = z * blocks_per_axis / resolution;
            let block = (bz * blocks_per_axis + by) * blocks_per_axis + bx;
            let idx = block % mlp_count;
            assignment[((z as usize * n) + y as usize) * n + x as usize] = idx;
        }

        // Train each network on samples drawn from its cells.
        let in_dim = encoding.out_dim();
        let h = hidden as usize;
        let mut mlps = Vec::with_capacity(mlp_count as usize);
        let peak = 40.0f32;
        for mlp_idx in 0..mlp_count {
            // KiloNeRF tiny-MLP shape: three hidden layers of `hidden`.
            let mut mlp = Mlp::new(
                &[in_dim, h, h, h, 4],
                Activation::Relu,
                Activation::Linear,
                rng,
            );
            let my_cells: Vec<(u32, u32, u32)> = occupied_cells
                .iter()
                .copied()
                .filter(|&(x, y, z)| {
                    assignment[((z as usize * n) + y as usize) * n + x as usize] == mlp_idx
                })
                .collect();
            if !my_cells.is_empty() {
                let mut trainer = AdamTrainer::new(&mlp, 4e-3);
                let batch = 48;
                let mut inputs = uni_geometry::FlatMat::with_row_capacity(batch, in_dim);
                let mut targets = uni_geometry::FlatMat::with_row_capacity(batch, 4);
                for _ in 0..train_steps {
                    inputs.clear_rows();
                    targets.clear_rows();
                    for _ in 0..batch {
                        let &(x, y, z) = &my_cells[rng.next_usize(my_cells.len())];
                        let local = Vec3::new(rng.next_f32(), rng.next_f32(), rng.next_f32());
                        let world = bounds.min
                            + (Vec3::new(x as f32, y as f32, z as f32) + local)
                                .mul_elem(cell_extent);
                        let s = field.sample(world, Vec3::Z);
                        inputs.push_row(&encoding.encode(local * 2.0 - Vec3::ONE));
                        targets.push_row(&[s.density / peak, s.color.r, s.color.g, s.color.b]);
                    }
                    trainer.train_step(&mut mlp, &inputs, &targets);
                }
            }
            mlps.push(mlp);
        }

        Self {
            bounds,
            resolution,
            assignment,
            mlps,
            encoding,
            peak_density: peak,
        }
    }

    /// The bounded domain.
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// Cells per axis.
    pub fn resolution(&self) -> u32 {
        self.resolution
    }

    /// The distinct tiny MLPs.
    pub fn mlps(&self) -> &[Mlp] {
        &self.mlps
    }

    /// The positional encoding applied to local coordinates.
    pub fn encoding(&self) -> &PositionalEncoding {
        &self.encoding
    }

    /// Number of occupied cells.
    pub fn occupied_cells(&self) -> usize {
        self.assignment.iter().filter(|&&a| a != EMPTY).count()
    }

    /// Fraction of cells occupied.
    pub fn occupancy(&self) -> f64 {
        self.occupied_cells() as f64 / self.assignment.len() as f64
    }

    /// Storage bytes: assignment table + BF16 weights of the full KiloNeRF
    /// complement (every occupied cell conceptually owns a network of this
    /// size; shared training is a baking shortcut, not a storage saving).
    pub fn storage_bytes(&self) -> u64 {
        let per_mlp = self.mlps.first().map_or(0, |m| m.weight_bytes());
        self.assignment.len() as u64 * 4 + self.occupied_cells() as u64 * per_mlp
    }

    /// The MLP index serving `world`, or `None` for empty space.
    pub fn mlp_index_at(&self, world: Vec3) -> Option<u32> {
        let u = self.bounds.normalize_point(world);
        if !(0.0..1.0 + 1e-6).contains(&u.x)
            || !(0.0..1.0 + 1e-6).contains(&u.y)
            || !(0.0..1.0 + 1e-6).contains(&u.z)
        {
            return None;
        }
        let n = self.resolution;
        let cell = |v: f32| ((v * n as f32) as u32).min(n - 1);
        let (x, y, z) = (cell(u.x), cell(u.y), cell(u.z));
        let a = self.assignment[((z as usize * n as usize) + y as usize) * n as usize + x as usize];
        (a != EMPTY).then_some(a)
    }

    /// Queries density and color at a world point (`None` in empty cells —
    /// the occupancy skip).
    ///
    /// Seed-era reference path: allocates per query and runs the scalar
    /// row-dot MLP kernel, so the `render_scalar` baselines keep
    /// measuring the seed's cost. Hot paths use
    /// [`KiloNerfGrid::query_scratch`], which runs the wide kernel.
    pub fn query(&self, world: Vec3) -> Option<KiloNerfSample> {
        let mlp_idx = self.mlp_index_at(world)?;
        let local = self.local_coords(world);
        let encoded = self.encoding.encode(local);
        let out = self.mlps[mlp_idx as usize].forward_scalar(&encoded);
        Some(self.sample_from(&out))
    }

    /// Like [`KiloNerfGrid::query`], but encoding and MLP activations go
    /// through caller-owned scratch so per-sample queries never allocate.
    pub fn query_scratch(
        &self,
        world: Vec3,
        scratch: &mut KiloNerfScratch,
    ) -> Option<KiloNerfSample> {
        let mlp_idx = self.mlp_index_at(world)?;
        let local = self.local_coords(world);
        self.encoding.encode_into(local, &mut scratch.encoded);
        let out = self.mlps[mlp_idx as usize].forward_scratch(&scratch.encoded, &mut scratch.mlp);
        Some(self.sample_from(out))
    }

    /// Cell-local coordinates in `[-1, 1]` for a world point.
    fn local_coords(&self, world: Vec3) -> Vec3 {
        let u = self.bounds.normalize_point(world);
        let n = self.resolution as f32;
        Vec3::new((u.x * n).fract(), (u.y * n).fract(), (u.z * n).fract()) * 2.0 - Vec3::ONE
    }

    /// Density/color from a raw 4-wide network output.
    fn sample_from(&self, out: &[f32]) -> KiloNerfSample {
        KiloNerfSample {
            density: out[0].max(0.0) * self.peak_density,
            color: Rgb::new(
                out[1].clamp(0.0, 1.0),
                out[2].clamp(0.0, 1.0),
                out[3].clamp(0.0, 1.0),
            ),
        }
    }
}

/// Reusable buffers for [`KiloNerfGrid::query_scratch`].
#[derive(Debug, Clone, Default)]
pub struct KiloNerfScratch {
    encoded: Vec<f32>,
    mlp: MlpScratch,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::{FieldPrimitive, Shape};

    fn small_grid() -> KiloNerfGrid {
        let field = AnalyticField::new(vec![FieldPrimitive {
            shape: Shape::Sphere {
                center: Vec3::ZERO,
                radius: 0.8,
            },
            albedo: Rgb::new(0.9, 0.1, 0.1),
            specular: 0.0,
        }]);
        let mut rng = XorShift64::new(5);
        KiloNerfGrid::bake(&field, Aabb::cube(1.5), 4, 2, 16, 60, &mut rng)
    }

    #[test]
    fn occupancy_is_partial_for_a_sphere() {
        let g = small_grid();
        let occ = g.occupancy();
        assert!(occ > 0.05 && occ < 0.9, "sphere fills some cells: {occ}");
    }

    #[test]
    fn empty_space_short_circuits() {
        let g = small_grid();
        assert!(
            g.query(Vec3::new(1.4, 1.4, 1.4)).is_none(),
            "corner is empty"
        );
        assert!(g.query(Vec3::splat(10.0)).is_none(), "outside bounds");
    }

    #[test]
    fn interior_queries_return_density() {
        let g = small_grid();
        let s = g.query(Vec3::ZERO).expect("center occupied");
        assert!(s.density > 5.0, "trained density at center: {}", s.density);
        assert!(s.color.r >= 0.0 && s.color.r <= 1.0);
    }

    #[test]
    fn training_learns_the_red_sphere() {
        let g = small_grid();
        let s = g.query(Vec3::new(0.0, 0.0, 0.6)).expect("inside sphere");
        assert!(
            s.color.r > s.color.b,
            "red channel should dominate: {:?}",
            s.color
        );
    }

    #[test]
    fn baking_is_deterministic() {
        let a = small_grid();
        let b = small_grid();
        assert_eq!(a.occupied_cells(), b.occupied_cells());
        let (pa, pb) = (
            a.query(Vec3::ZERO).expect("occupied"),
            b.query(Vec3::ZERO).expect("occupied"),
        );
        assert_eq!(pa.density, pb.density);
    }

    #[test]
    fn storage_counts_occupied_cells() {
        let g = small_grid();
        let per_mlp = g.mlps()[0].weight_bytes();
        assert_eq!(
            g.storage_bytes(),
            (4 * 4 * 4) * 4 + g.occupied_cells() as u64 * per_mlp
        );
    }

    #[test]
    fn mlp_index_consistent_within_cell() {
        let g = small_grid();
        let a = g.mlp_index_at(Vec3::new(0.01, 0.01, 0.01));
        let b = g.mlp_index_at(Vec3::new(0.02, 0.02, 0.02));
        assert_eq!(a, b, "same cell, same network");
    }
}
