//! Procedural scene specifications.
//!
//! A [`SceneSpec`] deterministically generates an [`AnalyticField`] (the
//! scene content) plus the sizing of every representation it will be baked
//! into. Dataset catalogs (`datasets` module) are collections of specs whose
//! representation sizes mirror the published checkpoints of the paper's
//! benchmark scenes.

use crate::field::{AnalyticField, FieldPrimitive, Shape};
use crate::hashgrid::HashGridConfig;
use crate::triplane::TriplaneConfig;
use serde::{Deserialize, Serialize};
use uni_geometry::camera::Orbit;
use uni_geometry::sampling::XorShift64;
use uni_geometry::{Rgb, Vec3};

/// The content flavor of a procedural scene.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SceneFlavor {
    /// A free-standing object cluster (NeRF-Synthetic style).
    Object,
    /// A bounded room with walls and furniture (Unbounded-360 indoor).
    Indoor,
    /// An open scene with ground and scattered content (Unbounded-360
    /// outdoor).
    Outdoor,
}

/// Sizing of every baked representation.
///
/// Counts here are *full-scale*; [`SceneSpec::with_detail`] scales them for
/// fast tests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReprParams {
    /// Target triangle count of the baked mesh.
    pub target_triangles: u32,
    /// Texture atlas resolution (texels per axis).
    pub texture_resolution: u32,
    /// Texture feature channels.
    pub texture_channels: u32,
    /// Number of 3D Gaussians.
    pub gaussian_count: u32,
    /// Hash grid configuration.
    pub hash: HashGridConfig,
    /// Low-rank decomposed grid configuration.
    pub triplane: TriplaneConfig,
    /// KiloNeRF macro-grid resolution (cells per axis).
    pub kilonerf_grid: u32,
    /// Hidden width of the KiloNeRF tiny MLPs.
    pub mlp_hidden: u32,
    /// Number of distinct trained tiny MLPs (cells share by locality).
    pub mlp_count: u32,
    /// Volume-rendering samples per ray (grid pipelines).
    pub samples_per_ray: u32,
    /// Samples per ray for the MLP-based pipeline (KiloNeRF marches far
    /// denser than grid pipelines because it lacks a learned importance
    /// sampler: 384 coarse+fine samples in the reference implementation).
    pub mlp_samples_per_ray: u32,
    /// Adam steps per trained network during baking.
    pub train_steps: u32,
}

impl ReprParams {
    /// Full-scale defaults for an object-scale scene (NeRF-Synthetic-like).
    pub fn object_scale() -> Self {
        Self {
            target_triangles: 150_000,
            texture_resolution: 2048,
            texture_channels: 8,
            gaussian_count: 300_000,
            hash: HashGridConfig {
                max_resolution: 1024,
                log2_table_size: 17, // Object scenes need smaller tables.
                ..HashGridConfig::default()
            },
            triplane: TriplaneConfig {
                plane_resolution: 1024,
                grid_resolution: 96,
                channels: 8,
            },
            kilonerf_grid: 16,
            mlp_hidden: 32,
            mlp_count: 16,
            samples_per_ray: 48,
            mlp_samples_per_ray: 192,
            train_steps: 250,
        }
    }

    /// Full-scale defaults for an unbounded scene (Mip-NeRF-360-like).
    pub fn unbounded_scale() -> Self {
        Self {
            target_triangles: 400_000,
            texture_resolution: 4096,
            texture_channels: 8,
            gaussian_count: 2_400_000,
            hash: HashGridConfig::default(),
            triplane: TriplaneConfig::default(),
            kilonerf_grid: 24,
            mlp_hidden: 32,
            mlp_count: 24,
            samples_per_ray: 64,
            mlp_samples_per_ray: 384,
            train_steps: 250,
        }
    }
}

/// A deterministic procedural scene specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneSpec {
    /// Scene name (used in reports).
    pub name: String,
    /// RNG seed; the same seed always yields the same scene.
    pub seed: u64,
    /// Content flavor.
    pub flavor: SceneFlavor,
    /// Number of procedural objects placed.
    pub object_count: u32,
    /// Scene extent in meters (content radius).
    pub extent: f32,
    /// Detail factor in `(0, 1]` scaling representation sizes.
    pub detail: f32,
    /// Representation sizing at `detail == 1.0`.
    pub repr: ReprParams,
}

impl SceneSpec {
    /// A small object-flavor demo scene.
    pub fn demo(name: impl Into<String>, seed: u64) -> Self {
        Self {
            name: name.into(),
            seed,
            flavor: SceneFlavor::Object,
            object_count: 6,
            extent: 1.6,
            detail: 1.0,
            repr: ReprParams::object_scale(),
        }
    }

    /// Creates a spec with a specific flavor and sizing.
    pub fn with_flavor(mut self, flavor: SceneFlavor) -> Self {
        self.flavor = flavor;
        if matches!(flavor, SceneFlavor::Outdoor) {
            self.extent = self.extent.max(8.0);
        }
        self
    }

    /// Scales every representation size by `detail` (clamped to
    /// `[0.01, 1]`). Tests use small detail for fast baking; benches use
    /// `1.0`.
    pub fn with_detail(mut self, detail: f32) -> Self {
        self.detail = detail.clamp(0.01, 1.0);
        self
    }

    /// Effective (detail-scaled) representation parameters.
    pub fn scaled_repr(&self) -> ReprParams {
        let d = f64::from(self.detail);
        let lin = |v: u32, min: u32| ((f64::from(v) * d).round() as u32).max(min);
        // Areas/volumes scale by sqrt/cbrt so linear feature density follows
        // the detail factor perceptually.
        let sqrt = |v: u32, min: u32| ((f64::from(v) * d.sqrt()).round() as u32).max(min);
        let r = self.repr;
        ReprParams {
            target_triangles: lin(r.target_triangles, 64),
            texture_resolution: sqrt(r.texture_resolution, 32),
            texture_channels: r.texture_channels,
            gaussian_count: lin(r.gaussian_count, 128),
            hash: HashGridConfig {
                levels: r
                    .hash
                    .levels
                    .min(4.max((f64::from(r.hash.levels) * d.max(0.25)) as u32)),
                features_per_entry: r.hash.features_per_entry,
                log2_table_size: r
                    .hash
                    .log2_table_size
                    .min(10.max((f64::from(r.hash.log2_table_size) * (0.5 + 0.5 * d)) as u32)),
                base_resolution: r.hash.base_resolution,
                max_resolution: sqrt(r.hash.max_resolution, 32),
            },
            triplane: TriplaneConfig {
                plane_resolution: sqrt(r.triplane.plane_resolution, 32),
                grid_resolution: sqrt(r.triplane.grid_resolution, 8),
                channels: r.triplane.channels,
            },
            kilonerf_grid: sqrt(r.kilonerf_grid, 4),
            mlp_hidden: r.mlp_hidden,
            mlp_count: lin(r.mlp_count, 2),
            samples_per_ray: sqrt(r.samples_per_ray, 8),
            mlp_samples_per_ray: sqrt(r.mlp_samples_per_ray, 12),
            train_steps: lin(r.train_steps, 16),
        }
    }

    /// Generates the analytic field for this spec (deterministic in
    /// `seed`).
    pub fn build_field(&self) -> AnalyticField {
        let mut rng = XorShift64::new(self.seed.wrapping_mul(0x9E37).wrapping_add(17));
        let mut prims = Vec::new();
        let palette = [
            Rgb::new(0.82, 0.26, 0.22),
            Rgb::new(0.24, 0.62, 0.85),
            Rgb::new(0.32, 0.72, 0.34),
            Rgb::new(0.91, 0.73, 0.25),
            Rgb::new(0.67, 0.42, 0.78),
            Rgb::new(0.88, 0.52, 0.30),
            Rgb::new(0.55, 0.77, 0.72),
        ];
        let pick_color = |rng: &mut XorShift64| palette[rng.next_usize(palette.len())];

        match self.flavor {
            SceneFlavor::Object => { /* no ground */ }
            SceneFlavor::Indoor => {
                prims.push(FieldPrimitive {
                    shape: Shape::Ground { level: 0.0 },
                    albedo: Rgb::new(0.45, 0.40, 0.36),
                    specular: 0.05,
                });
                // Two walls hint at the room (kept thin boxes).
                let e = self.extent;
                prims.push(FieldPrimitive {
                    shape: Shape::Box {
                        center: Vec3::new(0.0, e * 0.4, -e),
                        half: Vec3::new(e, e * 0.4, 0.05),
                    },
                    albedo: Rgb::new(0.75, 0.73, 0.68),
                    specular: 0.02,
                });
                prims.push(FieldPrimitive {
                    shape: Shape::Box {
                        center: Vec3::new(-e, e * 0.4, 0.0),
                        half: Vec3::new(0.05, e * 0.4, e),
                    },
                    albedo: Rgb::new(0.70, 0.72, 0.75),
                    specular: 0.02,
                });
            }
            SceneFlavor::Outdoor => {
                prims.push(FieldPrimitive {
                    shape: Shape::Ground { level: 0.0 },
                    albedo: Rgb::new(0.34, 0.47, 0.26),
                    specular: 0.0,
                });
            }
        }

        let placement_radius = match self.flavor {
            SceneFlavor::Object => self.extent * 0.6,
            SceneFlavor::Indoor => self.extent * 0.7,
            SceneFlavor::Outdoor => self.extent * 0.8,
        };
        for i in 0..self.object_count {
            let angle = rng.range_f32(0.0, std::f32::consts::TAU);
            let radius = rng.range_f32(0.15, 1.0) * placement_radius;
            let size = rng.range_f32(0.12, 0.4)
                * match self.flavor {
                    SceneFlavor::Object => self.extent * 0.6,
                    _ => self.extent * 0.25,
                };
            let ground = !matches!(self.flavor, SceneFlavor::Object);
            let y = if ground {
                size
            } else {
                rng.range_f32(-0.4, 0.4) * self.extent * 0.5
            };
            let center = Vec3::new(angle.cos() * radius, y, angle.sin() * radius);
            let albedo = pick_color(&mut rng);
            let specular = rng.range_f32(0.0, 0.7);
            let shape = match (i + rng.next_usize(3) as u32) % 3 {
                0 => Shape::Sphere {
                    center,
                    radius: size,
                },
                1 => Shape::Box {
                    center,
                    half: Vec3::new(
                        size * rng.range_f32(0.6, 1.2),
                        size * rng.range_f32(0.6, 1.4),
                        size * rng.range_f32(0.6, 1.2),
                    ),
                },
                _ => Shape::Cylinder {
                    center,
                    radius: size * 0.7,
                    half_height: size * rng.range_f32(0.8, 1.6),
                },
            };
            prims.push(FieldPrimitive {
                shape,
                albedo,
                specular,
            });
        }
        let field = AnalyticField::new(prims);
        match self.flavor {
            SceneFlavor::Indoor => field.with_background(Rgb::new(0.25, 0.24, 0.26)),
            _ => field,
        }
    }

    /// The camera orbit used for test views of this scene.
    pub fn orbit(&self, width: u32, height: u32) -> Orbit {
        let (radius, cam_height, target_y) = match self.flavor {
            SceneFlavor::Object => (self.extent * 1.7, self.extent * 0.6, 0.0),
            SceneFlavor::Indoor => (self.extent * 1.2, self.extent * 0.55, self.extent * 0.25),
            SceneFlavor::Outdoor => (self.extent * 1.1, self.extent * 0.45, self.extent * 0.12),
        };
        Orbit {
            target: Vec3::new(0.0, target_y, 0.0),
            radius,
            height: cam_height,
            fov_y: 55f32.to_radians(),
            width,
            height_px: height,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_generation_is_deterministic() {
        let spec = SceneSpec::demo("a", 7);
        let f1 = spec.build_field();
        let f2 = spec.build_field();
        assert_eq!(f1.primitives().len(), f2.primitives().len());
        assert_eq!(f1.primitives()[0].albedo, f2.primitives()[0].albedo);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SceneSpec::demo("a", 1).build_field();
        let b = SceneSpec::demo("b", 2).build_field();
        // Extremely unlikely to coincide: compare first primitive SDF at a
        // probe point.
        let p = Vec3::new(0.3, 0.2, 0.1);
        assert_ne!(a.sdf(p), b.sdf(p));
    }

    #[test]
    fn object_flavor_has_no_ground() {
        let f = SceneSpec::demo("a", 3).build_field();
        assert!(f
            .primitives()
            .iter()
            .all(|p| !matches!(p.shape, Shape::Ground { .. })));
    }

    #[test]
    fn outdoor_flavor_has_ground_and_larger_extent() {
        let spec = SceneSpec::demo("o", 3).with_flavor(SceneFlavor::Outdoor);
        assert!(spec.extent >= 8.0);
        let f = spec.build_field();
        assert!(f
            .primitives()
            .iter()
            .any(|p| matches!(p.shape, Shape::Ground { .. })));
    }

    #[test]
    fn detail_scales_counts_down() {
        let full = SceneSpec::demo("a", 1).scaled_repr();
        let tiny = SceneSpec::demo("a", 1).with_detail(0.05).scaled_repr();
        assert!(tiny.target_triangles < full.target_triangles);
        assert!(tiny.gaussian_count < full.gaussian_count);
        assert!(tiny.texture_resolution < full.texture_resolution);
        assert!(tiny.train_steps < full.train_steps);
        assert!(tiny.target_triangles >= 64, "floors hold");
    }

    #[test]
    fn detail_one_is_identity_for_linear_counts() {
        let spec = SceneSpec::demo("a", 1);
        let r = spec.scaled_repr();
        assert_eq!(r.target_triangles, spec.repr.target_triangles);
        assert_eq!(r.gaussian_count, spec.repr.gaussian_count);
    }

    #[test]
    fn detail_is_clamped() {
        let spec = SceneSpec::demo("a", 1).with_detail(7.0);
        assert_eq!(spec.detail, 1.0);
        let spec = SceneSpec::demo("a", 1).with_detail(-1.0);
        assert!(spec.detail > 0.0);
    }

    #[test]
    fn orbit_sees_the_content() {
        let spec = SceneSpec::demo("a", 5);
        let orbit = spec.orbit(320, 240);
        let cam = orbit.camera_at(1.0);
        // The orbit target must project to the screen center region.
        let (screen, ..) = cam.project_to_screen(orbit.target).expect("visible");
        assert!((screen.x - 160.0).abs() < 1.0);
    }

    #[test]
    fn object_count_controls_primitives() {
        let few = SceneSpec {
            object_count: 2,
            ..SceneSpec::demo("a", 9)
        }
        .build_field();
        let many = SceneSpec {
            object_count: 12,
            ..SceneSpec::demo("a", 9)
        }
        .build_field();
        assert_eq!(many.primitives().len() - few.primitives().len(), 10);
    }
}
