//! 3D Gaussian clouds — the dominant scene representation of
//! 3D-Gaussian-based pipelines (Sec. II-E).
//!
//! Each Gaussian stores (1) its centroid, (2) covariance as scale +
//! rotation quaternion, (3) opacity, and (4) spherical-harmonic color
//! coefficients. The projection helper produces the 2D screen-space conic
//! the splatting step evaluates per pixel.

use serde::{Deserialize, Serialize};
use uni_geometry::{sh, Aabb, Camera, Mat3, Rgb, Vec2, Vec3, Vec4};

/// One 3D Gaussian primitive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gaussian {
    /// Centroid in world space.
    pub mean: Vec3,
    /// Per-axis standard deviations (before rotation).
    pub scale: Vec3,
    /// Rotation as a unit quaternion `(x, y, z, w)`.
    pub rotation: Vec4,
    /// Opacity in `[0, 1]`.
    pub opacity: f32,
    /// SH coefficients per color channel, `[r..., g..., b...]`,
    /// `coeffs_per_channel` each.
    pub sh_coeffs: Vec<f32>,
}

impl Gaussian {
    /// World-space covariance `R S Sᵀ Rᵀ`.
    pub fn covariance(&self) -> Mat3 {
        let r = Mat3::from_quaternion(self.rotation);
        let s = Mat3::from_diagonal(self.scale.mul_elem(self.scale));
        let rs = r * s;
        rs * r.transpose()
    }

    /// Evaluates view-dependent color toward `view_dir` (unit, pointing
    /// from camera to Gaussian) — the SH-as-GEMM step of Fig. 6.
    ///
    /// The basis is evaluated once and dotted against all three channel
    /// coefficient blocks (the per-frame SH pass touches every visible
    /// splat, so the 3× basis reuse matters).
    pub fn color(&self, view_dir: Vec3, coeffs_per_channel: usize) -> Rgb {
        let n = coeffs_per_channel.min(16);
        debug_assert_eq!(self.sh_coeffs.len(), 3 * coeffs_per_channel);
        let mut basis = [0f32; 16];
        sh::eval_basis(view_dir, &mut basis[..n]);
        let dot = |c: &[f32]| -> f32 { c[..n].iter().zip(&basis[..n]).map(|(c, b)| c * b).sum() };
        // SH DC convention of 3DGS: color = 0.5 + C0 * dc (+ higher bands).
        let r = dot(&self.sh_coeffs[..coeffs_per_channel]);
        let g = dot(&self.sh_coeffs[coeffs_per_channel..2 * coeffs_per_channel]);
        let b = dot(&self.sh_coeffs[2 * coeffs_per_channel..]);
        Rgb::new(r + 0.5, g + 0.5, b + 0.5).saturate()
    }
}

/// A 2D projected splat: screen-space conic plus footprint radius.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProjectedSplat {
    /// Screen-space center in pixels.
    pub center: Vec2,
    /// View-space depth (positive; the sort key of the Sorting micro-op).
    pub depth: f32,
    /// Inverse 2D covariance `(a, b, c)` for `a dx² + 2 b dx dy + c dy²`.
    pub conic: (f32, f32, f32),
    /// Conservative footprint radius in pixels (3σ).
    pub radius: f32,
    /// Opacity after projection.
    pub opacity: f32,
    /// Index back into the cloud.
    pub index: u32,
}

impl ProjectedSplat {
    /// Gaussian falloff weight at pixel offset `(dx, dy)` from the center.
    #[inline]
    pub fn falloff(&self, dx: f32, dy: f32) -> f32 {
        let (a, b, c) = self.conic;
        let power = -0.5 * (a * dx * dx + c * dy * dy) - b * dx * dy;
        if power > 0.0 {
            0.0
        } else {
            power.exp()
        }
    }
}

/// A cloud of 3D Gaussians.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct GaussianCloud {
    /// The Gaussians.
    pub gaussians: Vec<Gaussian>,
    /// SH degree (0..=3); `(degree+1)²` coefficients per channel.
    pub sh_degree: u8,
}

impl GaussianCloud {
    /// Bytes per Gaussian as streamed by the splatting micro-op
    /// (mean 12 + scale 12 + quat 16 + opacity 4 + SH 3×16×4 = 236,
    /// padded to 240 — matching the ~248 B/splat PLY records of 3DGS).
    pub const BYTES_PER_GAUSSIAN: u32 = 240;

    /// Creates an empty cloud with the given SH degree.
    pub fn new(sh_degree: u8) -> Self {
        assert!(sh_degree <= 3, "sh degree must be <= 3");
        Self {
            gaussians: Vec::new(),
            sh_degree,
        }
    }

    /// SH coefficients per channel.
    pub fn coeffs_per_channel(&self) -> usize {
        sh::coeff_count(self.sh_degree)
    }

    /// Number of Gaussians.
    pub fn len(&self) -> usize {
        self.gaussians.len()
    }

    /// Whether the cloud is empty.
    pub fn is_empty(&self) -> bool {
        self.gaussians.is_empty()
    }

    /// Bounding box of all means padded by their 3σ extents.
    pub fn bounds(&self) -> Aabb {
        self.gaussians.iter().fold(Aabb::EMPTY, |acc, g| {
            let r = g.scale.max_component() * 3.0;
            acc.union(&Aabb::new(g.mean - Vec3::splat(r), g.mean + Vec3::splat(r)))
        })
    }

    /// Storage bytes in the point-cloud (PLY-like) format of Sec. II-E.
    pub fn storage_bytes(&self) -> u64 {
        let floats = 3 + 3 + 4 + 1 + 3 * self.coeffs_per_channel() as u64;
        self.gaussians.len() as u64 * floats * 4
    }

    /// Projects one Gaussian through a camera (EWA-style local affine
    /// approximation); the splatting step of Fig. 6.
    ///
    /// Returns `None` when the Gaussian is behind the near plane or its
    /// projected opacity falls below `alpha_threshold` (the paper's
    /// pre-defined threshold that bypasses low-density Gaussians).
    pub fn project(
        &self,
        index: u32,
        camera: &Camera,
        alpha_threshold: f32,
    ) -> Option<ProjectedSplat> {
        let g = &self.gaussians[index as usize];
        let (center, _ndc_z, depth) = camera.project_to_screen(g.mean)?;
        if g.opacity < alpha_threshold {
            return None;
        }
        // Local affine: world covariance -> camera -> screen. The Jacobian
        // of the perspective projection at the mean scales by f/z.
        //
        // The conjugations are fused: Σ = R·diag(s²)·Rᵀ is expanded into
        // its six unique entries, and only the top-left 2×2 of V·Σ·Vᵀ is
        // formed — projection runs once per Gaussian per frame, so this
        // replaces five full 3×3 matrix products on the hot path.
        let rm = Mat3::from_quaternion(g.rotation);
        let s2 = g.scale.mul_elem(g.scale);
        let (r0, r1, r2) = (rm.cols[0], rm.cols[1], rm.cols[2]);
        let sxx = s2.x * r0.x * r0.x + s2.y * r1.x * r1.x + s2.z * r2.x * r2.x;
        let syy = s2.x * r0.y * r0.y + s2.y * r1.y * r1.y + s2.z * r2.y * r2.y;
        let szz = s2.x * r0.z * r0.z + s2.y * r1.z * r1.z + s2.z * r2.z * r2.z;
        let sxy = s2.x * r0.x * r0.y + s2.y * r1.x * r1.y + s2.z * r2.x * r2.y;
        let sxz = s2.x * r0.x * r0.z + s2.y * r1.x * r1.z + s2.z * r2.x * r2.z;
        let syz = s2.x * r0.y * r0.z + s2.y * r1.y * r1.z + s2.z * r2.y * r2.z;
        // Rows 0 and 1 of the view rotation (world -> camera axes).
        let v0 = Vec3::new(
            camera.view.cols[0].x,
            camera.view.cols[1].x,
            camera.view.cols[2].x,
        );
        let v1 = Vec3::new(
            camera.view.cols[0].y,
            camera.view.cols[1].y,
            camera.view.cols[2].y,
        );
        let sv0 = Vec3::new(
            sxx * v0.x + sxy * v0.y + sxz * v0.z,
            sxy * v0.x + syy * v0.y + syz * v0.z,
            sxz * v0.x + syz * v0.y + szz * v0.z,
        );
        let sv1 = Vec3::new(
            sxx * v1.x + sxy * v1.y + sxz * v1.z,
            sxy * v1.x + syy * v1.y + syz * v1.z,
            sxz * v1.x + syz * v1.y + szz * v1.z,
        );
        let focal_px = camera.height as f32 / (2.0 * (camera.fov_y * 0.5).tan());
        let jz = focal_px / depth;
        // 2D covariance: top-left 2x2 of cov_cam scaled by (f/z)², plus the
        // 0.3px antialias floor used by 3DGS.
        let a = v0.dot(sv0) * jz * jz + 0.3;
        let b = v1.dot(sv0) * jz * jz;
        let c = v1.dot(sv1) * jz * jz + 0.3;
        let det = a * c - b * b;
        if det <= 1e-9 {
            return None;
        }
        let inv_det = 1.0 / det;
        let conic = (c * inv_det, -b * inv_det, a * inv_det);
        let mid = 0.5 * (a + c);
        let lambda_max = mid + ((mid * mid - det).max(0.0)).sqrt();
        let radius = (3.0 * lambda_max.sqrt()).ceil();
        Some(ProjectedSplat {
            center,
            depth,
            conic,
            radius,
            opacity: g.opacity,
            index,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_gaussian(mean: Vec3, sigma: f32) -> Gaussian {
        let n = sh::coeff_count(1);
        Gaussian {
            mean,
            scale: Vec3::splat(sigma),
            rotation: Vec4::new(0.0, 0.0, 0.0, 1.0),
            opacity: 0.8,
            sh_coeffs: vec![0.0; 3 * n],
        }
    }

    fn test_camera() -> Camera {
        Camera::look_at(
            Vec3::new(0.0, 0.0, 5.0),
            Vec3::ZERO,
            Vec3::Y,
            60f32.to_radians(),
            640,
            480,
        )
    }

    #[test]
    fn isotropic_covariance_is_diagonal() {
        let g = unit_gaussian(Vec3::ZERO, 0.5);
        let c = g.covariance();
        assert!((c.cols[0].x - 0.25).abs() < 1e-5);
        assert!((c.cols[1].y - 0.25).abs() < 1e-5);
        assert!(c.cols[0].y.abs() < 1e-6);
    }

    #[test]
    fn rotated_anisotropic_covariance_has_off_diagonals() {
        let half = std::f32::consts::FRAC_PI_4 * 0.5;
        let g = Gaussian {
            mean: Vec3::ZERO,
            scale: Vec3::new(1.0, 0.1, 0.1),
            rotation: Vec4::new(0.0, 0.0, half.sin(), half.cos()),
            opacity: 1.0,
            sh_coeffs: vec![0.0; 3],
        };
        let c = g.covariance();
        assert!(c.cols[0].y.abs() > 0.1, "45° rotation couples x and y");
        // Covariance must stay symmetric.
        assert!((c.cols[0].y - c.cols[1].x).abs() < 1e-5);
    }

    #[test]
    fn sh_dc_color_is_direction_independent() {
        let n = sh::coeff_count(0);
        let mut g = unit_gaussian(Vec3::ZERO, 1.0);
        g.sh_coeffs = vec![0.9, 0.1, -0.4]; // One DC coeff per channel.
        let _ = n;
        let c1 = g.color(Vec3::Z, 1);
        let c2 = g.color(Vec3::X, 1);
        assert_eq!(c1, c2);
        assert!(c1.r > c1.g, "positive red DC lifts red above 0.5 base");
    }

    #[test]
    fn projection_centers_on_screen() {
        let cloud = GaussianCloud {
            gaussians: vec![unit_gaussian(Vec3::ZERO, 0.1)],
            sh_degree: 1,
        };
        let s = cloud.project(0, &test_camera(), 0.01).expect("visible");
        assert!((s.center.x - 320.0).abs() < 0.5);
        assert!((s.center.y - 240.0).abs() < 0.5);
        assert!((s.depth - 5.0).abs() < 1e-3);
        assert!(s.radius >= 1.0);
    }

    #[test]
    fn behind_camera_is_culled() {
        let cloud = GaussianCloud {
            gaussians: vec![unit_gaussian(Vec3::new(0.0, 0.0, 10.0), 0.1)],
            sh_degree: 1,
        };
        assert!(cloud.project(0, &test_camera(), 0.01).is_none());
    }

    #[test]
    fn low_opacity_is_thresholded() {
        let mut g = unit_gaussian(Vec3::ZERO, 0.1);
        g.opacity = 0.001;
        let cloud = GaussianCloud {
            gaussians: vec![g],
            sh_degree: 1,
        };
        assert!(cloud.project(0, &test_camera(), 0.01).is_none());
    }

    #[test]
    fn closer_gaussians_project_larger() {
        let cloud = GaussianCloud {
            gaussians: vec![
                unit_gaussian(Vec3::new(0.0, 0.0, 2.0), 0.2), // 3 m away
                unit_gaussian(Vec3::new(0.0, 0.0, -5.0), 0.2), // 10 m away
            ],
            sh_degree: 1,
        };
        let near = cloud.project(0, &test_camera(), 0.01).expect("near");
        let far = cloud.project(1, &test_camera(), 0.01).expect("far");
        assert!(near.radius > far.radius);
        assert!(near.depth < far.depth);
    }

    #[test]
    fn falloff_peaks_at_center_and_decays() {
        let cloud = GaussianCloud {
            gaussians: vec![unit_gaussian(Vec3::ZERO, 0.3)],
            sh_degree: 1,
        };
        let s = cloud.project(0, &test_camera(), 0.01).expect("visible");
        let at_center = s.falloff(0.0, 0.0);
        let off = s.falloff(s.radius * 0.8, 0.0);
        assert!((at_center - 1.0).abs() < 1e-5);
        assert!(off < at_center);
        assert!(s.falloff(s.radius * 3.0, 0.0) < 0.01);
    }

    #[test]
    fn storage_bytes_match_record_size() {
        let mut cloud = GaussianCloud::new(3);
        cloud.gaussians.push(Gaussian {
            mean: Vec3::ZERO,
            scale: Vec3::ONE,
            rotation: Vec4::new(0.0, 0.0, 0.0, 1.0),
            opacity: 1.0,
            sh_coeffs: vec![0.0; 3 * 16],
        });
        // 3+3+4+1+48 floats = 59 * 4 = 236 bytes.
        assert_eq!(cloud.storage_bytes(), 236);
    }

    #[test]
    fn bounds_cover_three_sigma() {
        let cloud = GaussianCloud {
            gaussians: vec![unit_gaussian(Vec3::ZERO, 1.0)],
            sh_degree: 1,
        };
        let b = cloud.bounds();
        assert!(b.contains(Vec3::splat(2.9)));
        assert!(!b.contains(Vec3::splat(3.1)));
    }
}
