//! Low-rank decomposed grids (MeRF/TensoRF style) — the dominant scene
//! representation of low-rank-decomposed-grid-based pipelines (Sec. II-C).
//!
//! A 3D feature volume is factored into three dense 2D planes (xy, xz, yz
//! projections) plus a low-resolution dense 3D grid; querying a point
//! bilinearly interpolates each plane, trilinearly interpolates the grid,
//! and aggregates across the four sources. The aggregation across planes is
//! what the Decomposed Grid Indexing dataflow's fully-activated reduction
//! network performs (Fig. 12).

use crate::mesh::Texture2d;
use serde::{Deserialize, Serialize};
use uni_geometry::{interp, Aabb, Vec2, Vec3};

/// Configuration of a low-rank decomposed grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TriplaneConfig {
    /// Resolution of each 2D feature plane (texels per axis).
    pub plane_resolution: u32,
    /// Resolution of the low-res 3D grid (vertices per axis).
    pub grid_resolution: u32,
    /// Feature channels (shared by planes and grid).
    pub channels: u32,
}

impl Default for TriplaneConfig {
    /// MeRF-like defaults: 2048² planes + 128³ grid with 8 channels
    /// (density + diffuse RGB + 4 view-dependence features).
    fn default() -> Self {
        Self {
            plane_resolution: 2048,
            grid_resolution: 128,
            channels: 8,
        }
    }
}

impl TriplaneConfig {
    /// A small configuration for tests.
    pub fn tiny() -> Self {
        Self {
            plane_resolution: 32,
            grid_resolution: 8,
            channels: 8,
        }
    }

    /// Storage bytes: three planes + dense grid, 8-bit quantized channels
    /// (the MeRF on-disk format).
    pub fn storage_bytes(&self) -> u64 {
        let plane = u64::from(self.plane_resolution).pow(2) * u64::from(self.channels);
        let grid = u64::from(self.grid_resolution).pow(3) * u64::from(self.channels);
        3 * plane + grid
    }
}

/// The three axis-aligned projection planes, in fetch order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlaneAxis {
    /// The xy plane (z projected out).
    Xy,
    /// The xz plane (y projected out).
    Xz,
    /// The yz plane (x projected out).
    Yz,
}

impl PlaneAxis {
    /// All three planes.
    pub const ALL: [PlaneAxis; 3] = [PlaneAxis::Xy, PlaneAxis::Xz, PlaneAxis::Yz];

    /// Projects normalized 3D coordinates onto this plane.
    pub fn project(self, u: Vec3) -> Vec2 {
        match self {
            PlaneAxis::Xy => Vec2::new(u.x, u.y),
            PlaneAxis::Xz => Vec2::new(u.x, u.z),
            PlaneAxis::Yz => Vec2::new(u.y, u.z),
        }
    }
}

/// A low-rank decomposed feature grid over a bounded domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Triplane {
    config: TriplaneConfig,
    bounds: Aabb,
    planes: [Texture2d; 3],
    /// Dense low-res grid, `r³ × channels`, x-fastest.
    grid: Vec<f32>,
}

impl Triplane {
    /// Creates a zero-initialized decomposed grid over `bounds`.
    pub fn new(config: TriplaneConfig, bounds: Aabb) -> Self {
        let planes = [
            Texture2d::new(
                config.plane_resolution,
                config.plane_resolution,
                config.channels,
            ),
            Texture2d::new(
                config.plane_resolution,
                config.plane_resolution,
                config.channels,
            ),
            Texture2d::new(
                config.plane_resolution,
                config.plane_resolution,
                config.channels,
            ),
        ];
        let r = config.grid_resolution as usize;
        Self {
            config,
            bounds,
            planes,
            grid: vec![0.0; r * r * r * config.channels as usize],
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TriplaneConfig {
        &self.config
    }

    /// The bounded domain.
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// Mutable access to one projection plane (baking).
    pub fn plane_mut(&mut self, axis: PlaneAxis) -> &mut Texture2d {
        &mut self.planes[axis as usize]
    }

    /// One projection plane.
    pub fn plane(&self, axis: PlaneAxis) -> &Texture2d {
        &self.planes[axis as usize]
    }

    /// Writes the low-res grid vertex `(x, y, z)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range coordinates or channel mismatch.
    pub fn write_grid_vertex(&mut self, x: u32, y: u32, z: u32, features: &[f32]) {
        let r = self.config.grid_resolution;
        assert!(x < r && y < r && z < r, "grid vertex out of range");
        let c = self.config.channels as usize;
        assert_eq!(features.len(), c, "channel mismatch");
        let idx = (((z * r + y) * r + x) as usize) * c;
        self.grid[idx..idx + c].copy_from_slice(features);
    }

    fn grid_vertex(&self, x: u32, y: u32, z: u32) -> &[f32] {
        let r = self.config.grid_resolution;
        let c = self.config.channels as usize;
        let idx = (((z.min(r - 1) * r + y.min(r - 1)) * r + x.min(r - 1)) as usize) * c;
        &self.grid[idx..idx + c]
    }

    /// Fetches aggregated features for a world-space point: the low-rank
    /// decomposed indexing step of Fig. 4. Per-plane bilinear features and
    /// the trilinear grid features are summed channel-wise (MeRF-style
    /// additive aggregation). Fills `out` (length = channels).
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the channel count.
    // uni-lint: hot
    pub fn fetch(&self, world: Vec3, out: &mut [f32]) {
        let c = self.config.channels as usize;
        assert_eq!(out.len(), c, "output width mismatch");
        let u = self.bounds.normalize_point(world).clamp(0.0, 1.0);
        out.fill(0.0);
        for axis in PlaneAxis::ALL {
            let uv = axis.project(u);
            self.planes[axis as usize].accumulate_bilinear(uv, out);
        }
        // Low-res grid, trilinear.
        let res = self.config.grid_resolution;
        let cx = interp::cell_coord(u.x, res);
        let cy = interp::cell_coord(u.y, res);
        let cz = interp::cell_coord(u.z, res);
        let w = interp::trilinear_weights(cx.frac, cy.frac, cz.frac);
        for (corner, &wc) in w.iter().enumerate() {
            let x = cx.base as u32 + (corner as u32 & 1);
            let y = cy.base as u32 + ((corner as u32 >> 1) & 1);
            let z = cz.base as u32 + ((corner as u32 >> 2) & 1);
            let feats = self.grid_vertex(x, y, z);
            for (o, &v) in out.iter_mut().zip(feats) {
                *o += wc * v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Triplane {
        Triplane::new(TriplaneConfig::tiny(), Aabb::cube(1.0))
    }

    #[test]
    fn plane_projection_axes() {
        let u = Vec3::new(0.1, 0.2, 0.3);
        assert_eq!(PlaneAxis::Xy.project(u), Vec2::new(0.1, 0.2));
        assert_eq!(PlaneAxis::Xz.project(u), Vec2::new(0.1, 0.3));
        assert_eq!(PlaneAxis::Yz.project(u), Vec2::new(0.2, 0.3));
    }

    #[test]
    fn fetch_on_empty_grid_is_zero() {
        let t = tiny();
        let mut out = vec![1.0; 8];
        t.fetch(Vec3::ZERO, &mut out);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn fetch_sums_plane_contributions() {
        let mut t = tiny();
        let res = t.config().plane_resolution;
        // Constant 1.0 in channel 0 of the xy plane; 2.0 in channel 0 of yz.
        for y in 0..res {
            for x in 0..res {
                let mut v = vec![0.0; 8];
                v[0] = 1.0;
                t.plane_mut(PlaneAxis::Xy).set_texel(x, y, &v);
                v[0] = 2.0;
                t.plane_mut(PlaneAxis::Yz).set_texel(x, y, &v);
            }
        }
        let mut out = vec![0.0; 8];
        t.fetch(Vec3::new(0.3, -0.4, 0.5), &mut out);
        assert!(
            (out[0] - 3.0).abs() < 1e-4,
            "1 + 2 aggregated, got {}",
            out[0]
        );
        assert_eq!(out[1], 0.0);
    }

    #[test]
    fn grid_contribution_is_trilinear() {
        let mut t = tiny();
        let r = t.config().grid_resolution;
        for z in 0..r {
            for y in 0..r {
                for x in 0..r {
                    let mut v = vec![0.0; 8];
                    // Linear ramp along x in channel 2.
                    v[2] = x as f32 / (r - 1) as f32;
                    t.write_grid_vertex(x, y, z, &v);
                }
            }
        }
        let mut out = vec![0.0; 8];
        // World x = 0 maps to normalized 0.5 on the cube(1) domain.
        t.fetch(Vec3::new(0.0, 0.0, 0.0), &mut out);
        assert!((out[2] - 0.5).abs() < 0.1, "{}", out[2]);
        t.fetch(Vec3::new(1.0, 0.0, 0.0), &mut out);
        assert!((out[2] - 1.0).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn grid_write_out_of_range_panics() {
        let mut t = tiny();
        t.write_grid_vertex(100, 0, 0, &[0.0; 8]);
    }

    #[test]
    fn storage_matches_merf_scale() {
        let mb = TriplaneConfig::default().storage_bytes() as f64 / 1e6;
        // Tab. I lists <= 160 MB for low-rank-decomposed-grid pipelines.
        assert!(mb > 80.0 && mb <= 160.0, "{mb} MB");
    }

    #[test]
    fn out_of_bounds_clamps() {
        let t = tiny();
        let mut out = vec![0.0; 8];
        t.fetch(Vec3::splat(50.0), &mut out);
        t.fetch(Vec3::splat(-50.0), &mut out);
    }
}
