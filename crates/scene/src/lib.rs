//! Scene representations for the Uni-Render reproduction.
//!
//! This crate provides everything "scene": the five dominant scene
//! representations of Tab. I (triangle meshes + texture maps, KiloNeRF-style
//! MLP grids, low-rank decomposed tri-plane grids, multi-level hash grids,
//! and 3D Gaussian clouds), a genuine MLP implementation with Adam training,
//! the analytic field used as baking ground truth, procedural scene
//! specifications, dataset catalogs mirroring the paper's benchmarks, and
//! storage accounting.
//!
//! # Example
//!
//! ```
//! use uni_scene::SceneSpec;
//!
//! let scene = SceneSpec::demo("example", 7).with_detail(0.02).bake();
//! assert!(scene.mesh().triangle_count() > 0);
//! assert!(!scene.gaussians().is_empty());
//! assert!(scene.kilonerf().occupied_cells() > 0);
//! ```

pub mod bake;
pub mod datasets;
pub mod field;
pub mod gaussians;
pub mod hashgrid;
pub mod kilonerf;
pub mod mesh;
pub mod nn;
pub mod storage;
pub mod synthetic;
pub mod triplane;

pub use bake::{BakedScene, FEATURE_CHANNELS};
pub use datasets::{nerf_synthetic, unbounded360, unbounded360_indoor, DatasetScene};
pub use field::{AnalyticField, FieldPrimitive, FieldSample, Shape, SurfaceAttrs, PEAK_DENSITY};
pub use gaussians::{Gaussian, GaussianCloud, ProjectedSplat};
pub use hashgrid::{HashGrid, HashGridConfig};
pub use kilonerf::{KiloNerfGrid, KiloNerfSample, KiloNerfScratch};
pub use mesh::{Texture2d, TriangleMesh};
pub use nn::{Activation, AdamTrainer, Mlp, MlpScratch, PositionalEncoding};
pub use synthetic::{ReprParams, SceneFlavor, SceneSpec};
pub use triplane::{PlaneAxis, Triplane, TriplaneConfig};
