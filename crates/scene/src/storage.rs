//! Storage-efficiency accounting (the "Storage Efficiency" column of
//! Tab. I).
//!
//! Sizes are computed from a spec's *full-scale* representation parameters
//! (what the published checkpoints store on disk), independent of the
//! detail-scaled baked artifacts used in tests.

use crate::synthetic::SceneSpec;
use uni_microops::Pipeline;

/// Storage bytes of one pipeline's scene representation at full scale.
pub fn representation_bytes(spec: &SceneSpec, pipeline: Pipeline) -> u64 {
    let r = &spec.repr;
    match pipeline {
        Pipeline::Mesh => {
            // Geometry (≈0.6 vertices/triangle in a closed mesh; positions
            // f32 + uv f16 + indices u32) plus the 8-bit texture atlases.
            // MobileNeRF-style bakes ship several atlas slabs per scene
            // (foreground/background shells); we count 3 slabs plus a mip
            // chain (×4/3), which lands at MobileNeRF's published per-scene
            // sizes (~130 MB objects, ~550 MB unbounded).
            let verts = u64::from(r.target_triangles) * 6 / 10;
            let geometry = verts * (12 + 4) + u64::from(r.target_triangles) * 12;
            let texture =
                u64::from(r.texture_resolution).pow(2) * u64::from(r.texture_channels) * 3 * 4 / 3;
            geometry + texture
        }
        Pipeline::Mlp => {
            // KiloNeRF: occupancy table + one tiny MLP per occupied cell
            // (~30% occupancy), BF16 weights, three hidden layers.
            let cells = u64::from(r.kilonerf_grid).pow(3);
            let pe_dim = (3 + 6 * 6) as u64; // 6-octave positional encoding.
            let h = u64::from(r.mlp_hidden);
            let params = pe_dim * h + h + 2 * (h * h + h) + h * 4 + 4;
            cells * 4 + cells * 3 / 10 * params * 2
        }
        Pipeline::LowRankGrid => r.triplane.storage_bytes() + deferred_mlp_bytes(),
        Pipeline::HashGrid => {
            // Feature tables + the coarse occupancy bitfield Instant-NGP
            // keeps for ray marching (128³ bits per cascade, ~3 cascades).
            r.hash.storage_bytes() + 3 * (128u64.pow(3) / 8) + decoder_mlp_bytes(&r.hash)
        }
        Pipeline::Gaussian3d => {
            // Point-cloud records: 59 floats each (mean, scale, quat,
            // opacity, 3×16 SH).
            u64::from(r.gaussian_count) * 59 * 4
        }
        Pipeline::HybridMixRt => {
            // MixRT stores the mesh geometry (no texture) plus a reduced
            // hash field for view-dependent color.
            let verts = u64::from(r.target_triangles) * 6 / 10;
            let geometry = verts * 12 + u64::from(r.target_triangles) * 12;
            geometry + r.hash.storage_bytes() / 2
        }
    }
}

fn deferred_mlp_bytes() -> u64 {
    // [7,16,16,3] BF16.
    ((7 * 16 + 16) + (16 * 16 + 16) + (16 * 3 + 3)) * 2
}

fn decoder_mlp_bytes(hash: &crate::hashgrid::HashGridConfig) -> u64 {
    let in_dim = u64::from(hash.feature_dim());
    ((in_dim * 64 + 64) + (64 * 64 + 64) + (64 * 4 + 4)) * 2
}

/// Storage in megabytes (10^6 bytes, matching the paper's MB).
pub fn representation_megabytes(spec: &SceneSpec, pipeline: Pipeline) -> f64 {
    representation_bytes(spec, pipeline) as f64 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{ReprParams, SceneFlavor};

    fn unbounded_spec() -> SceneSpec {
        SceneSpec {
            name: "storage-test".into(),
            seed: 1,
            flavor: SceneFlavor::Outdoor,
            object_count: 8,
            extent: 10.0,
            detail: 1.0,
            repr: ReprParams::unbounded_scale(),
        }
    }

    /// Tab. I storage ordering on Unbounded-360: MLP (≤40 MB) < Hash
    /// (≤110 MB) < Low-Rank (≤160 MB) < 3DGS (≤600 MB) ≤ Mesh (≤700 MB).
    #[test]
    fn tab1_storage_ordering_holds() {
        let spec = unbounded_spec();
        let mb = |p| representation_megabytes(&spec, p);
        let mlp = mb(Pipeline::Mlp);
        let hash = mb(Pipeline::HashGrid);
        let lowrank = mb(Pipeline::LowRankGrid);
        let gauss = mb(Pipeline::Gaussian3d);
        let mesh = mb(Pipeline::Mesh);
        assert!(mlp < hash, "MLP {mlp} < hash {hash}");
        assert!(hash < lowrank, "hash {hash} < low-rank {lowrank}");
        assert!(lowrank < gauss, "low-rank {lowrank} < 3DGS {gauss}");
        assert!(gauss <= mesh * 1.2, "3DGS {gauss} ~<= mesh {mesh}");
    }

    /// Absolute scales land in the same band as Tab. I's per-scene worst
    /// cases.
    #[test]
    fn tab1_storage_magnitudes() {
        let spec = unbounded_spec();
        let mb = |p| representation_megabytes(&spec, p);
        assert!(
            mb(Pipeline::Mlp) <= 40.0,
            "MLP {} <= 40 MB",
            mb(Pipeline::Mlp)
        );
        assert!(
            mb(Pipeline::HashGrid) <= 110.0,
            "hash {} <= 110 MB",
            mb(Pipeline::HashGrid)
        );
        assert!(
            mb(Pipeline::LowRankGrid) <= 160.0,
            "low-rank {} <= 160 MB",
            mb(Pipeline::LowRankGrid)
        );
        assert!(
            mb(Pipeline::Gaussian3d) <= 600.0,
            "3DGS {} <= 600 MB",
            mb(Pipeline::Gaussian3d)
        );
        assert!(
            mb(Pipeline::Mesh) <= 700.0,
            "mesh {} <= 700 MB",
            mb(Pipeline::Mesh)
        );
        // And none of them are trivially small.
        assert!(mb(Pipeline::Mlp) > 1.0);
        assert!(mb(Pipeline::Mesh) > 50.0);
    }

    #[test]
    fn hybrid_is_lighter_than_mesh_plus_hash() {
        let spec = unbounded_spec();
        let hybrid = representation_bytes(&spec, Pipeline::HybridMixRt);
        let mesh = representation_bytes(&spec, Pipeline::Mesh);
        let hash = representation_bytes(&spec, Pipeline::HashGrid);
        assert!(hybrid < mesh + hash);
    }
}
