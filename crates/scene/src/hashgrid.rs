//! Multi-level hash grids (Instant-NGP style) — the dominant scene
//! representation of hash-grid-based pipelines (Sec. II-D).
//!
//! A set of multi-level 3D grids is stored in 1D hash-table format; vertex
//! coordinates map to table slots through a fixed spatial hash, collisions
//! allowed. Coarse levels whose dense vertex count fits in the table are
//! indexed *linearly* instead — which is exactly why Tab. II lists both
//! `Random Hash` and `Linear Indexing` as index functions of the Combined
//! Grid Indexing micro-operator.

use serde::{Deserialize, Serialize};
use uni_geometry::{interp, Aabb, F32x4, Vec3};

/// The Instant-NGP hash primes.
const PRIMES: [u64; 3] = [1, 2_654_435_761, 805_459_861];

/// Precomputed per-level indexing metadata.
///
/// `level_resolution` costs an `ln`/`exp` pair per call; the seed paid it
/// (plus the dense test, another pair) for each of 8 corners on each of
/// `L` levels on *every* fetch. The values depend only on the config, so
/// they are computed once in [`HashGrid::new`] and read here ever after —
/// bit-identical to the seed's per-call math.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct LevelMeta {
    /// Vertices per axis: `level_resolution(l) + 1` (also the linear
    /// stride base of dense levels).
    verts: u32,
    /// Whether the level is indexed linearly (dense) or hashed.
    dense: bool,
    /// This level's segment in the flat feature buffer:
    /// `tables[start..start + len]`.
    start: usize,
    len: usize,
}

/// Configuration of a multi-level hash grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HashGridConfig {
    /// Number of resolution levels (`L`).
    pub levels: u32,
    /// Feature channels per table entry (`F`).
    pub features_per_entry: u32,
    /// Log2 of the per-level table size (`T = 2^log2_table_size`).
    pub log2_table_size: u32,
    /// Coarsest grid resolution (vertices per axis).
    pub base_resolution: u32,
    /// Finest grid resolution (vertices per axis).
    pub max_resolution: u32,
}

impl Default for HashGridConfig {
    /// The canonical Instant-NGP configuration (L=16, T=2^19, base 16,
    /// max 2048), with F=4 — we store `[density, r, g, b]` per entry so the
    /// baked grid carries full appearance (the F=2→4 delta is documented in
    /// DESIGN.md).
    fn default() -> Self {
        Self {
            levels: 16,
            features_per_entry: 4,
            log2_table_size: 19,
            base_resolution: 16,
            max_resolution: 2048,
        }
    }
}

impl HashGridConfig {
    /// A small configuration for tests (fast to bake and query).
    pub fn tiny() -> Self {
        Self {
            levels: 4,
            features_per_entry: 4,
            log2_table_size: 12,
            base_resolution: 4,
            max_resolution: 64,
        }
    }

    /// Table entries per level.
    pub fn table_size(&self) -> u64 {
        1u64 << self.log2_table_size
    }

    /// Vertex resolution of level `l` (geometric growth from base to max).
    pub fn level_resolution(&self, l: u32) -> u32 {
        assert!(l < self.levels, "level out of range");
        if self.levels == 1 {
            return self.base_resolution;
        }
        let b = ((self.max_resolution as f64).ln() - (self.base_resolution as f64).ln())
            / (self.levels - 1) as f64;
        (self.base_resolution as f64 * (b * l as f64).exp()).round() as u32
    }

    /// Whether level `l` fits densely in the table (linear indexing).
    pub fn level_is_dense(&self, l: u32) -> bool {
        let r = self.level_resolution(l) as u64 + 1;
        r * r * r <= self.table_size()
    }

    /// Total feature storage bytes (BF16 entries).
    pub fn storage_bytes(&self) -> u64 {
        let mut total = 0u64;
        for l in 0..self.levels {
            let r = self.level_resolution(l) as u64 + 1;
            let entries = (r * r * r).min(self.table_size());
            total += entries * u64::from(self.features_per_entry) * 2;
        }
        total
    }

    /// Concatenated feature width (`L × F`).
    pub fn feature_dim(&self) -> u32 {
        self.levels * self.features_per_entry
    }
}

/// A multi-level hash grid over a bounded domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HashGrid {
    config: HashGridConfig,
    bounds: Aabb,
    /// Every level's feature table in **one** flat allocation; level `l`
    /// owns the `level_meta[l].start..+len` segment (`table_len × F`
    /// floats each — dense levels use only their `resolution³ × F`
    /// prefix).
    tables: Vec<f32>,
    /// Per-level resolution/stride/indexing metadata, hoisted out of the
    /// fetch and probe hot loops.
    level_meta: Vec<LevelMeta>,
    /// `table_size() - 1`, the hashed-level slot mask.
    hash_mask: u64,
    /// Cached [`HashGrid::finest_dense_level`].
    finest_dense: u32,
}

impl HashGrid {
    /// Creates a zero-initialized grid over `bounds`.
    pub fn new(config: HashGridConfig, bounds: Aabb) -> Self {
        let mut start = 0usize;
        let level_meta: Vec<LevelMeta> = (0..config.levels)
            .map(|l| {
                let verts = config.level_resolution(l) + 1;
                let r = u64::from(verts);
                let entries = (r * r * r).min(config.table_size());
                let len = (entries * u64::from(config.features_per_entry)) as usize;
                let meta = LevelMeta {
                    verts,
                    dense: config.level_is_dense(l),
                    start,
                    len,
                };
                start += len;
                meta
            })
            .collect();
        let tables = vec![0.0; start];
        let finest_dense = (0..config.levels)
            .rev()
            .find(|&l| level_meta[l as usize].dense)
            .unwrap_or(0);
        Self {
            config,
            bounds,
            tables,
            level_meta,
            hash_mask: config.table_size() - 1,
            finest_dense,
        }
    }

    /// The grid configuration.
    pub fn config(&self) -> &HashGridConfig {
        &self.config
    }

    /// The bounded domain.
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// Level `l`'s segment of the flat feature buffer.
    fn table(&self, l: usize) -> &[f32] {
        let m = &self.level_meta[l];
        &self.tables[m.start..m.start + m.len]
    }

    /// Mutable view of level `l`'s segment (baking).
    fn table_mut(&mut self, l: usize) -> &mut [f32] {
        let m = &self.level_meta[l];
        &mut self.tables[m.start..m.start + m.len]
    }

    /// Slot index of vertex `(x, y, z)` at level `l`: linear for dense
    /// levels, spatial hash otherwise.
    // uni-lint: hot
    pub fn slot(&self, l: u32, x: u32, y: u32, z: u32) -> usize {
        let m = self.level_meta[l as usize];
        if m.dense {
            let res = u64::from(m.verts);
            ((u64::from(z) * res + u64::from(y)) * res + u64::from(x)) as usize
        } else {
            let h = u64::from(x).wrapping_mul(PRIMES[0])
                ^ u64::from(y).wrapping_mul(PRIMES[1])
                ^ u64::from(z).wrapping_mul(PRIMES[2]);
            (h & self.hash_mask) as usize
        }
    }

    /// Seed-era slot computation: recomputes the level resolution and
    /// dense test (two `ln`/`exp` pairs) per call, exactly as the seed
    /// did. Kept so the `*_scalar` baselines keep measuring the seed's
    /// per-call cost.
    fn slot_uncached(&self, l: u32, x: u32, y: u32, z: u32) -> usize {
        let res = self.config.level_resolution(l) as u64 + 1;
        if self.config.level_is_dense(l) {
            ((u64::from(z) * res + u64::from(y)) * res + u64::from(x)) as usize
        } else {
            let h = u64::from(x).wrapping_mul(PRIMES[0])
                ^ u64::from(y).wrapping_mul(PRIMES[1])
                ^ u64::from(z).wrapping_mul(PRIMES[2]);
            (h & (self.config.table_size() - 1)) as usize
        }
    }

    /// All 8 corner slots of the cell at `(x0, y0, z0)` on level `l` in
    /// one batch: dense levels are pure stride adds off one linear base,
    /// hashed levels XOR-combine two precomputed products per axis —
    /// corner order matches the trilinear weight order (x fastest).
    #[inline]
    // uni-lint: hot
    fn corner_slots(&self, l: usize, x0: u32, y0: u32, z0: u32) -> [usize; 8] {
        let m = self.level_meta[l];
        if m.dense {
            let v = u64::from(m.verts);
            let base = (u64::from(z0) * v + u64::from(y0)) * v + u64::from(x0);
            [
                base,
                base + 1,
                base + v,
                base + v + 1,
                base + v * v,
                base + v * v + 1,
                base + v * v + v,
                base + v * v + v + 1,
            ]
            .map(|s| s as usize)
        } else {
            let hx = [
                u64::from(x0).wrapping_mul(PRIMES[0]),
                u64::from(x0 + 1).wrapping_mul(PRIMES[0]),
            ];
            let hy = [
                u64::from(y0).wrapping_mul(PRIMES[1]),
                u64::from(y0 + 1).wrapping_mul(PRIMES[1]),
            ];
            let hz = [
                u64::from(z0).wrapping_mul(PRIMES[2]),
                u64::from(z0 + 1).wrapping_mul(PRIMES[2]),
            ];
            let mut slots = [0usize; 8];
            for (c, s) in slots.iter_mut().enumerate() {
                let h = hx[c & 1] ^ hy[(c >> 1) & 1] ^ hz[(c >> 2) & 1];
                *s = (h & self.hash_mask) as usize;
            }
            slots
        }
    }

    /// Writes the features of vertex `(x, y, z)` at level `l` (baking).
    ///
    /// # Panics
    ///
    /// Panics on feature-width mismatch.
    pub fn write_vertex(&mut self, l: u32, x: u32, y: u32, z: u32, features: &[f32]) {
        let f = self.config.features_per_entry as usize;
        assert_eq!(features.len(), f, "feature width mismatch");
        let slot = self.slot(l, x, y, z) * f;
        self.table_mut(l as usize)[slot..slot + f].copy_from_slice(features);
    }

    /// Reads the features of vertex `(x, y, z)` at level `l`.
    pub fn read_vertex(&self, l: u32, x: u32, y: u32, z: u32) -> &[f32] {
        let f = self.config.features_per_entry as usize;
        let slot = self.slot(l, x, y, z) * f;
        &self.table(l as usize)[slot..slot + f]
    }

    /// The finest dense (collision-free) level, used as the occupancy
    /// proxy by fast ray marchers (Instant-NGP keeps an equivalent
    /// occupancy grid next to its hash tables).
    pub fn finest_dense_level(&self) -> u32 {
        self.finest_dense
    }

    /// Cheap occupancy probe: trilinear density (channel 0) of the finest
    /// dense level only — one level instead of `L`, one channel instead of
    /// `F`. Corner slots come in one stride-add batch off the cached
    /// level metadata; the accumulation order matches the seed exactly.
    // uni-lint: hot
    pub fn density_probe(&self, world: Vec3) -> f32 {
        let l = self.finest_dense as usize;
        let u = self.bounds.normalize_point(world).clamp(0.0, 1.0);
        let verts = self.level_meta[l].verts;
        let cx = interp::cell_coord(u.x, verts);
        let cy = interp::cell_coord(u.y, verts);
        let cz = interp::cell_coord(u.z, verts);
        let w = interp::trilinear_weights(cx.frac, cy.frac, cz.frac);
        let slots = self.corner_slots(l, cx.base as u32, cy.base as u32, cz.base as u32);
        let table = self.table(l);
        let f = self.config.features_per_entry as usize;
        let mut acc = 0.0;
        for (&slot, &wc) in slots.iter().zip(&w) {
            acc += wc * table[slot * f];
        }
        acc
    }

    /// Seed-era probe: rediscovers the finest dense level and recomputes
    /// per-corner slots through the uncached `ln`/`exp` path on every
    /// call — the baseline `render_scalar` measures against.
    pub fn density_probe_scalar(&self, world: Vec3) -> f32 {
        let l = (0..self.config.levels)
            .rev()
            .find(|&l| self.config.level_is_dense(l))
            .unwrap_or(0);
        let u = self.bounds.normalize_point(world).clamp(0.0, 1.0);
        let res = self.config.level_resolution(l) + 1;
        let cx = interp::cell_coord(u.x, res);
        let cy = interp::cell_coord(u.y, res);
        let cz = interp::cell_coord(u.z, res);
        let w = interp::trilinear_weights(cx.frac, cy.frac, cz.frac);
        let (x0, y0, z0) = (cx.base as u32, cy.base as u32, cz.base as u32);
        let f = self.config.features_per_entry as usize;
        let mut acc = 0.0;
        for (corner, &wc) in w.iter().enumerate() {
            let x = x0 + (corner as u32 & 1);
            let y = y0 + ((corner as u32 >> 1) & 1);
            let z = z0 + ((corner as u32 >> 2) & 1);
            let slot = self.slot_uncached(l, x, y, z) * f;
            acc += wc * self.table(l as usize)[slot];
        }
        acc
    }

    /// Fetches the concatenated trilinearly-interpolated features for a
    /// world-space point: the hash-indexing step of Fig. 5. Fills `out`
    /// (length `L × F`).
    ///
    /// Per level, the 8 corner slots are computed in one batch from the
    /// cached metadata and all `F = 4` feature channels interpolate in
    /// one wide op per corner. Corner order and per-channel accumulation
    /// order are the seed's, so the result is bit-identical to
    /// [`HashGrid::fetch_scalar`].
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != feature_dim()`.
    // uni-lint: hot
    pub fn fetch(&self, world: Vec3, out: &mut [f32]) {
        assert_eq!(
            out.len(),
            self.config.feature_dim() as usize,
            "output width mismatch"
        );
        let u = self.bounds.normalize_point(world).clamp(0.0, 1.0);
        let f = self.config.features_per_entry as usize;
        for (l, m) in self.level_meta.iter().enumerate() {
            let cx = interp::cell_coord(u.x, m.verts);
            let cy = interp::cell_coord(u.y, m.verts);
            let cz = interp::cell_coord(u.z, m.verts);
            let w = interp::trilinear_weights(cx.frac, cy.frac, cz.frac);
            let slots = self.corner_slots(l, cx.base as u32, cy.base as u32, cz.base as u32);
            let table = self.table(l);
            let dst = &mut out[l * f..(l + 1) * f];
            if f == 4 {
                // One 4-lane multiply-accumulate per corner; lane-wise
                // ops keep each channel's scalar add chain intact.
                let mut acc = F32x4::ZERO;
                for (&slot, &wc) in slots.iter().zip(&w) {
                    acc =
                        F32x4::load(&table[slot * 4..slot * 4 + 4]).mul_add(F32x4::splat(wc), acc);
                }
                acc.store(dst);
            } else {
                dst.fill(0.0);
                for (&slot, &wc) in slots.iter().zip(&w) {
                    let feats = &table[slot * f..(slot + 1) * f];
                    for (d, &v) in dst.iter_mut().zip(feats) {
                        *d += wc * v;
                    }
                }
            }
        }
    }

    /// Seed-era fetch: per-call `ln`/`exp` level resolutions and one
    /// corner at a time — the baseline `render_scalar` measures against.
    /// Bit-identical to [`HashGrid::fetch`].
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != feature_dim()`.
    pub fn fetch_scalar(&self, world: Vec3, out: &mut [f32]) {
        assert_eq!(
            out.len(),
            self.config.feature_dim() as usize,
            "output width mismatch"
        );
        let u = self.bounds.normalize_point(world).clamp(0.0, 1.0);
        let f = self.config.features_per_entry as usize;
        for l in 0..self.config.levels {
            let res = self.config.level_resolution(l) + 1;
            let cx = interp::cell_coord(u.x, res);
            let cy = interp::cell_coord(u.y, res);
            let cz = interp::cell_coord(u.z, res);
            let w = interp::trilinear_weights(cx.frac, cy.frac, cz.frac);
            let (x0, y0, z0) = (cx.base as u32, cy.base as u32, cz.base as u32);
            let dst = &mut out[l as usize * f..(l as usize + 1) * f];
            dst.fill(0.0);
            for (corner, &wc) in w.iter().enumerate() {
                let x = x0 + (corner as u32 & 1);
                let y = y0 + ((corner as u32 >> 1) & 1);
                let z = z0 + ((corner as u32 >> 2) & 1);
                let slot = self.slot_uncached(l, x, y, z) * f;
                let feats = &self.table(l as usize)[slot..slot + f];
                for (d, &v) in dst.iter_mut().zip(feats) {
                    *d += wc * v;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tiny_grid() -> HashGrid {
        HashGrid::new(HashGridConfig::tiny(), Aabb::cube(1.0))
    }

    #[test]
    fn level_resolutions_grow_geometrically() {
        let c = HashGridConfig::default();
        assert_eq!(c.level_resolution(0), 16);
        assert_eq!(c.level_resolution(15), 2048);
        for l in 1..c.levels {
            assert!(c.level_resolution(l) >= c.level_resolution(l - 1));
        }
    }

    #[test]
    fn coarse_levels_are_dense_fine_levels_hashed() {
        let c = HashGridConfig::default();
        assert!(c.level_is_dense(0), "16^3 < 2^19");
        assert!(!c.level_is_dense(15), "2048^3 > 2^19");
        // Both index functions of Tab. II are exercised by one grid.
        let dense_count = (0..c.levels).filter(|&l| c.level_is_dense(l)).count();
        assert!(dense_count >= 1 && dense_count < c.levels as usize);
    }

    #[test]
    fn slot_is_in_table_range() {
        let g = tiny_grid();
        for l in 0..g.config().levels {
            let res = g.config().level_resolution(l) + 1;
            for &(x, y, z) in &[(0, 0, 0), (res - 1, res - 1, res - 1), (1, 2, 3)] {
                let s = g.slot(l, x.min(res - 1), y.min(res - 1), z.min(res - 1));
                assert!(s < g.table(l as usize).len() / 4);
            }
        }
    }

    #[test]
    fn write_then_fetch_at_vertex_returns_features() {
        let mut g = tiny_grid();
        // Write identical features to every vertex of level 0 so
        // interpolation is exact regardless of position.
        let res = g.config().level_resolution(0) + 1;
        for z in 0..res {
            for y in 0..res {
                for x in 0..res {
                    g.write_vertex(0, x, y, z, &[1.0, 2.0, 3.0, 4.0]);
                }
            }
        }
        let mut out = vec![0.0; g.config().feature_dim() as usize];
        g.fetch(Vec3::new(0.1, -0.2, 0.4), &mut out);
        assert!((out[0] - 1.0).abs() < 1e-5);
        assert!((out[3] - 4.0).abs() < 1e-5);
        // Other levels stay zero.
        assert_eq!(out[4], 0.0);
    }

    #[test]
    fn fetch_interpolates_between_vertices() {
        let mut g = HashGrid::new(
            HashGridConfig {
                levels: 1,
                features_per_entry: 1,
                log2_table_size: 10,
                base_resolution: 1,
                max_resolution: 1,
            },
            Aabb::new(Vec3::ZERO, Vec3::ONE),
        );
        // Level 0 resolution 1 -> 2 vertices per axis (res+1).
        g.write_vertex(0, 1, 0, 0, &[1.0]);
        let mut out = [0f32];
        g.fetch(Vec3::new(0.5, 0.0, 0.0), &mut out);
        assert!((out[0] - 0.5).abs() < 1e-5, "{}", out[0]);
        g.fetch(Vec3::new(0.25, 0.0, 0.0), &mut out);
        assert!((out[0] - 0.25).abs() < 1e-5);
    }

    #[test]
    fn hash_collisions_share_slots() {
        let c = HashGridConfig {
            levels: 1,
            features_per_entry: 1,
            log2_table_size: 4, // 16 slots, far fewer than vertices.
            base_resolution: 64,
            max_resolution: 64,
        };
        let g = HashGrid::new(c, Aabb::cube(1.0));
        assert!(!c.level_is_dense(0));
        // Pigeonhole: some pair of distinct vertices must collide.
        let mut seen = std::collections::HashMap::new();
        let mut collided = false;
        for x in 0..30u32 {
            let s = g.slot(0, x, 0, 0);
            if seen.insert(s, x).is_some() {
                collided = true;
                break;
            }
        }
        assert!(collided, "16-slot table must collide within 30 vertices");
    }

    #[test]
    fn out_of_bounds_points_clamp() {
        let g = tiny_grid();
        let mut out = vec![0.0; g.config().feature_dim() as usize];
        g.fetch(Vec3::splat(100.0), &mut out); // Must not panic.
        g.fetch(Vec3::splat(-100.0), &mut out);
    }

    #[test]
    fn storage_accounts_dense_levels_smaller() {
        let c = HashGridConfig::default();
        let dense0 = (c.level_resolution(0) as u64 + 1).pow(3);
        assert!(dense0 < c.table_size());
        // Total must be less than L * T * F * 2 because dense levels are
        // stored at their true size.
        assert!(c.storage_bytes() < u64::from(c.levels) * c.table_size() * 4 * 2);
        // Default config lands near the ~110 MB hash-grid storage of Tab. I
        // when combined with the occupancy/scaffold overhead counted in
        // `storage::hash_grid_bytes`.
        let mb = c.storage_bytes() as f64 / 1e6;
        assert!(mb > 30.0 && mb < 120.0, "{mb} MB");
    }

    /// Populates every level of a grid with deterministic junk so parity
    /// tests see non-trivial values on both dense and hashed levels.
    fn filled_grid(config: HashGridConfig) -> HashGrid {
        let mut g = HashGrid::new(config, Aabb::cube(1.0));
        let f = config.features_per_entry as usize;
        for l in 0..config.levels {
            let res = (config.level_resolution(l) + 1).min(9);
            for z in 0..res {
                for y in 0..res {
                    for x in 0..res {
                        let feats: Vec<f32> = (0..f)
                            .map(|c| {
                                ((x * 7 + y * 3 + z * 5 + c as u32 * 11 + l) % 13) as f32 * 0.17
                                    - 0.5
                            })
                            .collect();
                        g.write_vertex(l, x, y, z, &feats);
                    }
                }
            }
        }
        g
    }

    /// The cached-metadata fetch/probe are bit-identical to the seed-era
    /// scalar twins (same corner order, same accumulation chains), on the
    /// default F=4 wide path and on a general-F config.
    #[test]
    fn cached_fetch_and_probe_match_scalar_bit_for_bit() {
        for config in [
            HashGridConfig::tiny(),
            HashGridConfig {
                levels: 3,
                features_per_entry: 2,
                log2_table_size: 8,
                base_resolution: 2,
                max_resolution: 32,
            },
        ] {
            let g = filled_grid(config);
            let mut fast = vec![0.0f32; config.feature_dim() as usize];
            let mut slow = vec![0.0f32; config.feature_dim() as usize];
            for p in [
                Vec3::new(0.13, -0.41, 0.77),
                Vec3::new(-0.99, 0.5, 0.01),
                Vec3::splat(0.0),
                Vec3::splat(5.0), // clamped
            ] {
                g.fetch(p, &mut fast);
                g.fetch_scalar(p, &mut slow);
                for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "F={} feature {i} at {p:?}",
                        config.features_per_entry
                    );
                }
                assert_eq!(
                    g.density_probe(p).to_bits(),
                    g.density_probe_scalar(p).to_bits(),
                    "probe at {p:?}"
                );
            }
        }
    }

    /// The cached finest dense level and slot metadata agree with the
    /// uncached config math they were hoisted from.
    #[test]
    fn cached_metadata_matches_config_math() {
        for config in [HashGridConfig::default(), HashGridConfig::tiny()] {
            let g = HashGrid::new(config, Aabb::cube(1.0));
            assert_eq!(
                g.finest_dense_level(),
                (0..config.levels)
                    .rev()
                    .find(|&l| config.level_is_dense(l))
                    .unwrap_or(0)
            );
            for l in 0..config.levels {
                for &(x, y, z) in &[(0u32, 0u32, 0u32), (1, 2, 3), (5, 0, 7)] {
                    assert_eq!(g.slot(l, x, y, z), g.slot_uncached(l, x, y, z), "level {l}");
                }
            }
        }
    }

    proptest! {
        /// Fetched features are convex combinations of written vertex
        /// features, hence bounded by the written range.
        #[test]
        fn prop_fetch_bounded_by_range(px in -1f32..1.0, py in -1f32..1.0, pz in -1f32..1.0) {
            let mut g = tiny_grid();
            let res = g.config().level_resolution(1) + 1;
            for z in 0..res {
                for y in 0..res {
                    for x in 0..res {
                        let v = ((x + y + z) % 5) as f32;
                        g.write_vertex(1, x, y, z, &[v, v, v, v]);
                    }
                }
            }
            let mut out = vec![0.0; g.config().feature_dim() as usize];
            g.fetch(Vec3::new(px, py, pz), &mut out);
            let f = g.config().features_per_entry as usize;
            for &v in &out[f..2 * f] {
                prop_assert!((-1e-4..=4.0001).contains(&v));
            }
        }

        /// Slots are deterministic.
        #[test]
        fn prop_slot_deterministic(x in 0u32..64, y in 0u32..64, z in 0u32..64) {
            let g = tiny_grid();
            let l = g.config().levels - 1;
            prop_assert_eq!(g.slot(l, x, y, z), g.slot(l, x, y, z));
        }
    }
}
