//! Fixture self-tests: every rule must fire on its known-bad fixture
//! and stay silent on the known-good twin, suppression must demand a
//! reason and leave an audit trail, and the JSON report shape must not
//! drift. Fixtures live in `crates/lint/fixtures/` — excluded from
//! directory walks (the corpus must not lint the workspace red) but
//! lintable when passed explicitly, which the CI negative step relies
//! on.

use std::path::Path;
use uni_lint::{analyze_source, render_json, Config, Report};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {path:?}: {e}"))
}

/// Lints a fixture under a virtual workspace path (which drives rule
/// scoping), exactly as `analyze_source` would see a real file.
fn lint_as(virtual_path: &str, name: &str) -> Report {
    let mut report = Report::default();
    analyze_source(
        virtual_path,
        &fixture(name),
        &Config::default(),
        &mut report,
    );
    report
}

#[test]
fn every_rule_fires_on_bad_and_stays_silent_on_good() {
    let cases = [
        ("R1", "crates/scene/src/fixture.rs"),
        ("R2", "crates/engine/src/fixture.rs"),
        ("R3", "crates/engine/src/fixture.rs"),
        ("R4", "crates/engine/src/sched.rs"),
        ("R5", "crates/engine/src/fixture.rs"),
        ("R6", "crates/engine/src/fixture.rs"),
        ("R7", "crates/renderers/src/fixture.rs"),
    ];
    for (rule, vpath) in cases {
        let stem = rule.to_ascii_lowercase();
        let bad = lint_as(vpath, &format!("{stem}_bad.rs"));
        assert!(
            bad.diagnostics.iter().any(|d| d.rule == rule && d.denied),
            "{rule}: bad fixture must produce a denied {rule} finding, got {:?}",
            bad.diagnostics
        );
        let good = lint_as(vpath, &format!("{stem}_good.rs"));
        assert!(
            good.is_clean() && good.diagnostics.is_empty(),
            "{rule}: good fixture must lint clean, got {:?}",
            good.diagnostics
        );
    }
}

#[test]
fn reasoned_allow_suppresses_and_is_audited() {
    let report = lint_as("crates/engine/src/fixture.rs", "allow_ok.rs");
    assert!(report.is_clean(), "{:?}", report.diagnostics);
    assert_eq!(report.allows_used.len(), 1, "the suppression is counted");
    assert_eq!(report.allows_used[0].rule, "R3");
    assert!(
        report.allows_used[0].reason.contains("seed"),
        "the audit trail carries the reason verbatim"
    );
}

#[test]
fn allow_without_reason_is_rejected_and_suppresses_nothing() {
    let report = lint_as("crates/engine/src/fixture.rs", "allow_missing_reason.rs");
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == "LINT" && d.denied),
        "a reasonless allow is itself a denied finding: {:?}",
        report.diagnostics
    );
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == "R3" && d.denied),
        "and the violation it sat on still fires: {:?}",
        report.diagnostics
    );
    assert!(report.allows_used.is_empty());
}

#[test]
fn fixture_corpus_is_excluded_from_directory_walks() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = uni_lint::collect_files(root).expect("walk the lint crate");
    assert!(
        files
            .iter()
            .all(|f| !f.components().any(|c| c.as_os_str() == "fixtures")),
        "fixtures must never lint the workspace red: {files:?}"
    );
    assert!(
        files
            .iter()
            .any(|f| f.file_name().is_some_and(|n| n == "lib.rs")),
        "the walk still finds real sources"
    );
}

#[test]
fn injected_fixture_fails_when_passed_explicitly() {
    // The CI negative step runs exactly this file through the binary; the
    // library-level contract is that it produces a denied finding.
    let report = lint_as("crates/lint/fixtures/ci_injected.rs", "ci_injected.rs");
    assert!(!report.is_clean());
}

#[test]
fn json_snapshot_of_the_injected_fixture() {
    let report = lint_as("ci_injected.rs", "ci_injected.rs");
    let json = render_json(&report);
    let expected = "{\n  \"version\": 1,\n  \"diagnostics\": [\n    {\"rule\": \"R3\", \"path\": \"ci_injected.rs\", \"line\": 5, \"col\": 7, \"denied\": true, \"message\": \"partial_cmp orders floats partially (NaN breaks determinism): use f32::total_cmp / f64::total_cmp (found `partial_cmp`)\"}\n  ],\n  \"allows\": [\n  ],\n  \"summary\": {\"files\": 1, \"findings\": 1, \"denied\": 1, \"allows_used\": 0}\n}\n";
    assert_eq!(json, expected);
}
