//! Fixture self-tests: every rule must fire on its known-bad fixture
//! and stay silent on the known-good twin, suppression must demand a
//! reason and leave an audit trail, and the JSON report shape must not
//! drift. Fixtures live in `crates/lint/fixtures/` — excluded from
//! directory walks (the corpus must not lint the workspace red) but
//! lintable when passed explicitly, which the CI negative step relies
//! on.

use std::path::Path;
use uni_lint::baseline::Baseline;
use uni_lint::{analyze_files, analyze_source, render_json, Config, Report};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {path:?}: {e}"))
}

/// Lints a fixture under a virtual workspace path (which drives rule
/// scoping), exactly as `analyze_source` would see a real file.
fn lint_as(virtual_path: &str, name: &str) -> Report {
    let mut report = Report::default();
    analyze_source(
        virtual_path,
        &fixture(name),
        &Config::default(),
        &mut report,
    );
    report
}

#[test]
fn every_rule_fires_on_bad_and_stays_silent_on_good() {
    let cases = [
        ("R1", "crates/scene/src/fixture.rs"),
        ("R2", "crates/engine/src/fixture.rs"),
        ("R3", "crates/engine/src/fixture.rs"),
        ("R4", "crates/engine/src/sched.rs"),
        ("R5", "crates/engine/src/fixture.rs"),
        ("R6", "crates/engine/src/fixture.rs"),
        ("R7", "crates/renderers/src/fixture.rs"),
    ];
    for (rule, vpath) in cases {
        let stem = rule.to_ascii_lowercase();
        let bad = lint_as(vpath, &format!("{stem}_bad.rs"));
        assert!(
            bad.diagnostics.iter().any(|d| d.rule == rule && d.denied),
            "{rule}: bad fixture must produce a denied {rule} finding, got {:?}",
            bad.diagnostics
        );
        let good = lint_as(vpath, &format!("{stem}_good.rs"));
        assert!(
            good.is_clean() && good.diagnostics.is_empty(),
            "{rule}: good fixture must lint clean, got {:?}",
            good.diagnostics
        );
    }
}

#[test]
fn reasoned_allow_suppresses_and_is_audited() {
    let report = lint_as("crates/engine/src/fixture.rs", "allow_ok.rs");
    assert!(report.is_clean(), "{:?}", report.diagnostics);
    assert_eq!(report.allows_used.len(), 1, "the suppression is counted");
    assert_eq!(report.allows_used[0].rule, "R3");
    assert!(
        report.allows_used[0].reason.contains("seed"),
        "the audit trail carries the reason verbatim"
    );
}

#[test]
fn allow_without_reason_is_rejected_and_suppresses_nothing() {
    let report = lint_as("crates/engine/src/fixture.rs", "allow_missing_reason.rs");
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == "LINT" && d.denied),
        "a reasonless allow is itself a denied finding: {:?}",
        report.diagnostics
    );
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == "R3" && d.denied),
        "and the violation it sat on still fires: {:?}",
        report.diagnostics
    );
    assert!(report.allows_used.is_empty());
}

#[test]
fn fixture_corpus_is_excluded_from_directory_walks() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = uni_lint::collect_files(root).expect("walk the lint crate");
    assert!(
        files
            .iter()
            .all(|f| !f.components().any(|c| c.as_os_str() == "fixtures")),
        "fixtures must never lint the workspace red: {files:?}"
    );
    assert!(
        files
            .iter()
            .any(|f| f.file_name().is_some_and(|n| n == "lib.rs")),
        "the walk still finds real sources"
    );
}

#[test]
fn injected_fixture_fails_when_passed_explicitly() {
    // The CI negative step runs exactly this file through the binary; the
    // library-level contract is that it produces a denied finding.
    let report = lint_as("crates/lint/fixtures/ci_injected.rs", "ci_injected.rs");
    assert!(!report.is_clean());
}

#[test]
fn interprocedural_rules_fire_on_bad_and_stay_silent_on_good() {
    let cases = [
        ("R8", "crates/renderers/src/fixture.rs"),
        ("R9", "crates/renderers/src/fixture.rs"),
        ("R10", "crates/engine/src/fixture.rs"),
    ];
    for (rule, vpath) in cases {
        let stem = rule.to_ascii_lowercase();
        let bad = lint_as(vpath, &format!("{stem}_bad.rs"));
        assert!(
            bad.diagnostics.iter().any(|d| d.rule == rule && d.denied),
            "{rule}: bad fixture must produce a denied {rule} finding, got {:?}",
            bad.diagnostics
        );
        let good = lint_as(vpath, &format!("{stem}_good.rs"));
        assert!(
            good.is_clean() && good.diagnostics.is_empty(),
            "{rule}: good fixture must lint clean, got {:?}",
            good.diagnostics
        );
    }
}

#[test]
fn r8_diagnostic_carries_the_call_chain() {
    let report = lint_as("crates/renderers/src/fixture.rs", "r8_bad.rs");
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "R8")
        .expect("an R8 finding");
    assert!(
        d.message.contains("render_rows -> helper -> deeper -> vec"),
        "the chain names every hop down to the allocation: {}",
        d.message
    );
}

#[test]
fn r10_reports_both_the_cycle_and_the_wait_under_lock() {
    let report = lint_as("crates/engine/src/fixture.rs", "r10_bad.rs");
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == "R10" && d.message.contains("alpha -> beta -> alpha")),
        "the acquisition cycle is reported with its full loop: {:?}",
        report.diagnostics
    );
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == "R10" && d.message.contains("held across `wait`")),
        "the guard held across the ticket wait is reported: {:?}",
        report.diagnostics
    );
}

#[test]
fn call_graph_handles_recursion() {
    let src = "// uni-lint: hot\nfn spin(n: usize) -> usize {\n    if n == 0 {\n        leaf()\n    } else {\n        spin(n - 1)\n    }\n}\nfn leaf() -> usize {\n    let v = vec![1];\n    v.len()\n}\n";
    let report = analyze_files(
        &[("crates/x/src/a.rs".to_string(), src.to_string())],
        &Config::default(),
    );
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == "R8" && d.message.contains("spin -> leaf")),
        "recursion must terminate and still reach the leaf: {:?}",
        report.diagnostics
    );
}

#[test]
fn ambiguous_method_calls_link_to_every_candidate() {
    // `w.step()` cannot be type-resolved from tokens; the conservative
    // resolution links it to both `step` impls, so B::step's allocation
    // is found.
    let caller = "// uni-lint: hot\nfn hot_entry(w: &W) -> usize {\n    w.step()\n}\n";
    let defs = "struct A;\nimpl A {\n    fn step(&self) -> usize {\n        1\n    }\n}\nstruct B;\nimpl B {\n    fn step(&self) -> usize {\n        let v = vec![2];\n        v.len()\n    }\n}\n";
    let report = analyze_files(
        &[
            ("crates/x/src/caller.rs".to_string(), caller.to_string()),
            ("crates/y/src/defs.rs".to_string(), defs.to_string()),
        ],
        &Config::default(),
    );
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == "R8" && d.message.contains("B::step")),
        "{:?}",
        report.diagnostics
    );
}

#[test]
fn self_calls_resolve_within_their_own_impl() {
    // `self.tick()` in A must bind to A::tick only — B::tick's
    // allocation is unreachable from the hot fn.
    let src = "struct A;\nimpl A {\n    // uni-lint: hot\n    fn run(&self) -> usize {\n        self.tick()\n    }\n    fn tick(&self) -> usize {\n        1\n    }\n}\nstruct B;\nimpl B {\n    fn tick(&self) -> usize {\n        let v = vec![1];\n        v.len()\n    }\n}\n";
    let report = analyze_files(
        &[("crates/x/src/a.rs".to_string(), src.to_string())],
        &Config::default(),
    );
    assert!(
        !report.diagnostics.iter().any(|d| d.rule == "R8"),
        "{:?}",
        report.diagnostics
    );
}

#[test]
fn cross_crate_free_fn_chains_resolve() {
    let hot = "// uni-lint: hot\nfn render(n: usize) -> usize {\n    shared_helper(n)\n}\n";
    let lib =
        "pub fn shared_helper(n: usize) -> usize {\n    let v = vec![0u8; n];\n    v.len()\n}\n";
    let report = analyze_files(
        &[
            ("crates/renderers/src/hot.rs".to_string(), hot.to_string()),
            ("crates/geometry/src/lib.rs".to_string(), lib.to_string()),
        ],
        &Config::default(),
    );
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == "R8" && d.message.contains("render -> shared_helper -> vec")),
        "{:?}",
        report.diagnostics
    );
}

#[test]
fn findings_sort_by_path_regardless_of_input_order() {
    let src = "fn f(a: f32, b: f32) {\n    a.partial_cmp(&b);\n}\n".to_string();
    let report = analyze_files(
        &[("b.rs".to_string(), src.clone()), ("a.rs".to_string(), src)],
        &Config::default(),
    );
    let paths: Vec<&str> = report.diagnostics.iter().map(|d| d.path.as_str()).collect();
    assert_eq!(paths, ["a.rs", "b.rs"], "output order is walk-independent");
}

#[test]
fn r11_new_suppression_is_denied_without_blessing() {
    let mut report = lint_as("crates/engine/src/fixture.rs", "r11_bad.rs");
    assert!(report.is_clean(), "the allow suppresses the R3 finding");
    let notes = Baseline::default().rebase(&mut report);
    assert!(notes.is_empty());
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == "R11" && d.denied),
        "an unblessed suppression is itself a denied finding: {:?}",
        report.diagnostics
    );
}

#[test]
fn r11_blessed_suppression_passes_and_baseline_roundtrips() {
    let mut report = lint_as("crates/engine/src/fixture.rs", "r11_good.rs");
    let snapshot = Baseline::from_report(&report);
    let parsed = Baseline::parse(&snapshot.render()).expect("rendered baseline parses back");
    assert_eq!(parsed, snapshot, "render/parse roundtrip is lossless");
    let notes = parsed.rebase(&mut report);
    assert!(notes.is_empty());
    assert!(report.is_clean(), "{:?}", report.diagnostics);
    assert_eq!(report.allows_used.len(), 1);
}

#[test]
fn r11_baseline_downgrades_known_findings_but_not_new_ones() {
    let mut old = lint_as("crates/engine/src/fixture.rs", "r3_bad.rs");
    let snapshot = Baseline::from_report(&old);
    snapshot.rebase(&mut old);
    assert!(
        old.is_clean(),
        "a baselined finding downgrades to warn: {:?}",
        old.diagnostics
    );
    assert!(!old.diagnostics.is_empty(), "…but it is still reported");

    // The same violation appearing in a *new* file stays denied.
    let src = fixture("r3_bad.rs");
    let mut fresh = analyze_files(
        &[
            ("crates/engine/src/fixture.rs".to_string(), src.clone()),
            ("crates/engine/src/other.rs".to_string(), src),
        ],
        &Config::default(),
    );
    snapshot.rebase(&mut fresh);
    assert_eq!(fresh.denied_count(), 1, "{:?}", fresh.diagnostics);
}

#[test]
fn the_linter_lints_its_own_sources_clean() {
    // The lint crate's src/ is part of the default walk (skip_dir only
    // excludes the fixture corpus), so it must hold its own contracts —
    // including the interprocedural ones — under deny-all.
    let lint_src = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let files = uni_lint::collect_files(&lint_src).expect("walk lint src");
    assert!(
        files.iter().any(|f| f.ends_with("graph.rs")),
        "the walk sees the linter's own modules: {files:?}"
    );
    let config = Config {
        deny_all: true,
        ..Config::default()
    };
    let report = uni_lint::run(&lint_src, &files, &config).expect("lint the linter");
    assert!(report.is_clean(), "{:?}", report.diagnostics);
}

#[test]
fn injected_r8_fixture_fails_when_passed_explicitly() {
    // The CI negative step runs exactly this file through the binary.
    let report = lint_as(
        "crates/lint/fixtures/ci_injected_r8.rs",
        "ci_injected_r8.rs",
    );
    assert!(!report.is_clean());
    assert!(report.diagnostics.iter().any(|d| d.rule == "R8"));
}

#[test]
fn json_snapshot_of_the_injected_r8_fixture() {
    let report = lint_as("ci_injected_r8.rs", "ci_injected_r8.rs");
    let json = render_json(&report);
    let expected = "{\n  \"version\": 1,\n  \"diagnostics\": [\n    {\"rule\": \"R8\", \"path\": \"ci_injected_r8.rs\", \"line\": 15, \"col\": 15, \"denied\": true, \"message\": \"allocation in a fn reachable from a `// uni-lint: hot` fn: render_rows -> helper -> deeper -> vec — the whole hot call tree must borrow scratch, not allocate; fix the helper (and mark it hot) or audited-suppress\"}\n  ],\n  \"allows\": [\n  ],\n  \"summary\": {\"files\": 1, \"findings\": 1, \"denied\": 1, \"allows_used\": 0}\n}\n";
    assert_eq!(json, expected);
}

#[test]
fn json_snapshot_of_the_injected_fixture() {
    let report = lint_as("ci_injected.rs", "ci_injected.rs");
    let json = render_json(&report);
    let expected = "{\n  \"version\": 1,\n  \"diagnostics\": [\n    {\"rule\": \"R3\", \"path\": \"ci_injected.rs\", \"line\": 5, \"col\": 7, \"denied\": true, \"message\": \"partial_cmp orders floats partially (NaN breaks determinism): use f32::total_cmp / f64::total_cmp (found `partial_cmp`)\"}\n  ],\n  \"allows\": [\n  ],\n  \"summary\": {\"files\": 1, \"findings\": 1, \"denied\": 1, \"allows_used\": 0}\n}\n";
    assert_eq!(json, expected);
}
