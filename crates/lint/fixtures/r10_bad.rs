//! R10 fixture: inconsistent acquisition order between `alpha` and
//! `beta` (one leg routed through a helper call, so only the
//! interprocedural edge closes the cycle) plus a guard held across a
//! ticket wait.

pub fn forward(s: &State) {
    let _a = s.alpha.lock().unwrap();
    let _b = s.beta.lock().unwrap();
}

pub fn backward(s: &State) {
    let _b = s.beta.lock().unwrap();
    grab_alpha(s);
}

fn grab_alpha(s: &State) {
    let _a = s.alpha.lock().unwrap();
}

pub fn stall(s: &State, t: &Ticket) {
    let _a = s.alpha.lock().unwrap();
    t.wait();
}
