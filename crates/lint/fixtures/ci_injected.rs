// CI negative fixture: `cargo run -p uni-lint -- --deny-all
// crates/lint/fixtures/ci_injected.rs` must exit non-zero. R3 is
// path-independent, so this fails no matter where the file is mounted.
pub fn order(a: f32, b: f32) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap()
}
