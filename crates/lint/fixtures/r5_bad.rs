// R5 fixture: unordered container in a delivery path (linted as
// crates/engine/src/*).
use std::collections::HashMap;

pub struct Accounting {
    pub per_session: HashMap<u64, u64>,
}
