//! R9 good twin: sim-time is threaded through as a parameter and the
//! tally uses an ordered map, so the same call shape carries no taint.

pub struct Fifo;

impl SchedulePolicy for Fifo {
    fn pick(&self, now_us: u64, n: usize) -> usize {
        score(now_us, n)
    }
}

fn score(now_us: u64, n: usize) -> usize {
    (now_us as usize) + n
}

pub struct RenderServer;

impl RenderServer {
    pub fn next_frame(&self) -> usize {
        tally()
    }
}

fn tally() -> usize {
    let seen = BTreeMap::<u32, u32>::new();
    seen.len()
}
