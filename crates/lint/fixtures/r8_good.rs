//! R8 good twin: the same call chain stays allocation-free by writing
//! into caller-owned scratch.

// uni-lint: hot
pub fn render_rows(out: &mut [u8]) -> usize {
    helper(out)
}

fn helper(out: &mut [u8]) -> usize {
    deeper(out)
}

fn deeper(out: &mut [u8]) -> usize {
    out.fill(1);
    out.len()
}
