//! Injected R8 violation for the CI negative control: the allocating
//! helper sits two calls below the hot fn, so only the interprocedural
//! pass can catch it — proving the call-graph gate actually gates.

// uni-lint: hot
pub fn render_rows(n: usize) -> usize {
    helper(n)
}

fn helper(n: usize) -> usize {
    deeper(n)
}

fn deeper(n: usize) -> usize {
    let buf = vec![0u8; n];
    buf.len()
}
