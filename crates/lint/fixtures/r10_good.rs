//! R10 good twin: both legs acquire `alpha` before `beta` (one global
//! order) and the guard is dropped before the ticket wait.

pub fn forward(s: &State) {
    let _a = s.alpha.lock().unwrap();
    let _b = s.beta.lock().unwrap();
}

pub fn backward(s: &State) {
    let a = s.alpha.lock().unwrap();
    grab_beta(s);
    drop(a);
}

fn grab_beta(s: &State) {
    let _b = s.beta.lock().unwrap();
}

pub fn stall(s: &State, t: &Ticket) {
    let a = s.alpha.lock().unwrap();
    drop(a);
    t.wait();
}
