// R4 fixture: schedule-order accounting (ticks, not clocks).
pub fn frame_deadline(tick: u64, budget: u64) -> u64 {
    tick + budget
}
