// Suppression fixture: an allow without a reason must itself be a
// denied finding, and must suppress nothing.
pub fn sort_depths(depths: &mut [f32]) {
    // uni-lint: allow(R3)
    depths.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
