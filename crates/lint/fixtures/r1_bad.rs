// R1 fixture: nested Vec in a hot crate (linted as crates/scene/src/*).
pub struct Bins {
    pub per_tile: Vec<Vec<u32>>,
}
