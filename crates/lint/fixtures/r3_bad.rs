// R3 fixture: partial float order.
pub fn sort_depths(depths: &mut [f32]) {
    depths.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
