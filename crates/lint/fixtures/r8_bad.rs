//! R8 fixture: the allocation hides two calls below the hot fn — only
//! the interprocedural pass can see it, and the diagnostic must carry
//! the call chain.

// uni-lint: hot
pub fn render_rows(n: usize) -> usize {
    helper(n)
}

fn helper(n: usize) -> usize {
    deeper(n)
}

fn deeper(n: usize) -> usize {
    let v = vec![0u8; n];
    v.len()
}
