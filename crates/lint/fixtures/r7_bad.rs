// R7 fixture: allocation inside a hot-marked function.
// uni-lint: hot
pub fn render_rows(out: &mut [f32]) {
    let staged: Vec<f32> = out.iter().map(|v| v * 2.0).collect();
    out.copy_from_slice(&staged);
}
