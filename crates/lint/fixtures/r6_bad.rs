// R6 fixture: interior mutability inside a SchedulePolicy impl.
impl SchedulePolicy for Sticky {
    fn pick(&self) -> usize {
        let memo = RefCell::new(0usize);
        *memo.borrow()
    }
}
