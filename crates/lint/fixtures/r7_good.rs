// R7 fixture: the hot loop writes in place through borrowed buffers.
// uni-lint: hot
pub fn render_rows(out: &mut [f32]) {
    for v in out.iter_mut() {
        *v *= 2.0;
    }
}
