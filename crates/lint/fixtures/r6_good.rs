// R6 fixture: a pure policy — every decision is a function of its
// arguments.
impl SchedulePolicy for Sticky {
    fn pick(&self, views: &[SessionView]) -> usize {
        views.iter().map(|v| v.delivered).sum::<u64>() as usize % views.len().max(1)
    }
}
