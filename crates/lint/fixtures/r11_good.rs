//! R11 good twin: the same suppression, but the test blesses it into a
//! baseline first — a blessed suppression passes the ratchet.

pub fn order(a: f32, b: f32) -> Option<Ordering> {
    // uni-lint: allow(R3, blessed suppression recorded in the committed baseline)
    a.partial_cmp(&b)
}
