// R1 fixture: the flat layout the rule asks for.
pub struct Bins {
    pub data: Vec<u32>,
    pub offsets: Vec<usize>,
}
