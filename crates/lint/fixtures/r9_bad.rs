//! R9 fixture: the wall clock and the unordered map hide behind free
//! helpers outside every R4/R5 path scope — only determinism taint from
//! the policy impl and the server method reaches them.

pub struct Fifo;

impl SchedulePolicy for Fifo {
    fn pick(&self, n: usize) -> usize {
        score(n)
    }
}

fn score(n: usize) -> usize {
    stamp() + n
}

fn stamp() -> usize {
    let t = Instant::now();
    t.elapsed().as_micros() as usize
}

pub struct RenderServer;

impl RenderServer {
    pub fn next_frame(&self) -> usize {
        tally()
    }
}

fn tally() -> usize {
    let seen = HashMap::<u32, u32>::new();
    seen.len()
}
