// R3 fixture: total float order.
pub fn sort_depths(depths: &mut [f32]) {
    depths.sort_by(f32::total_cmp);
}
