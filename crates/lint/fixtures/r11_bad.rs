//! R11 fixture: a reasoned suppression that is *not* in the committed
//! baseline — the ratchet must deny it until it is re-blessed with
//! `--write-baseline`.

pub fn order(a: f32, b: f32) -> Option<Ordering> {
    // uni-lint: allow(R3, new suppression smuggled in without re-blessing)
    a.partial_cmp(&b)
}
