// R2 fixture: parallelism through the sanctioned primitives.
pub fn fan_out(data: &mut [f32]) {
    uni_parallel::par_bands(data, 16, |_band, _chunk| {});
}
