// Suppression fixture: a violation under a reasoned, audited allow.
pub fn sort_depths(depths: &mut [f32]) {
    // uni-lint: allow(R3, seed-faithful baseline keeps the seed comparator)
    depths.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
