// R4 fixture: wall clock in a scheduler (linted as a sched.rs).
pub fn frame_deadline() -> std::time::Instant {
    Instant::now()
}
