// R5 fixture: deterministic iteration order.
use std::collections::BTreeMap;

pub struct Accounting {
    pub per_session: BTreeMap<u64, u64>,
}
