// R2 fixture: raw thread spawn outside uni-parallel.
pub fn fan_out() {
    std::thread::spawn(|| {});
}
