//! A hand-rolled Rust surface lexer for the lint pass.
//!
//! This is deliberately **not** a full Rust parser: the rules only need a
//! token stream with comments, string/char literals, and attributes
//! stripped (so `"Instant-NGP"` in a doc string can never trip the
//! wall-clock rule), plus the `// uni-lint: ...` directives those
//! comments carry. Every token remembers its `line:col` so diagnostics
//! point at source, and the stream preserves enough structure (`::`
//! merged, braces kept) for the context tracker in [`crate::rules`] to
//! follow `mod`/`impl`/`fn` nesting.

/// One surviving token: an identifier, number, lifetime, or single piece
/// of punctuation (`::` is merged into one token).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in characters).
    pub col: u32,
}

/// A `// uni-lint: ...` control comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// `// uni-lint: hot` — the next `fn` is a hot inner loop; R7 denies
    /// allocation inside it.
    Hot { line: u32 },
    /// `// uni-lint: allow(RULE, reason)` — suppresses `RULE` on this
    /// line and the next. The reason is mandatory.
    Allow {
        line: u32,
        rule: String,
        reason: String,
    },
    /// A `uni-lint:` comment the lexer could not parse (unknown verb,
    /// missing reason, bad parens). Always a diagnostic: a suppression
    /// that silently fails to parse would un-suppress nothing and
    /// enforce nothing.
    Malformed { line: u32, message: String },
}

impl Directive {
    pub fn line(&self) -> u32 {
        match self {
            Directive::Hot { line }
            | Directive::Allow { line, .. }
            | Directive::Malformed { line, .. } => *line,
        }
    }
}

/// Lexer output: the stripped token stream plus every directive found in
/// the stripped comments, both in source order.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    pub directives: Vec<Directive>,
}

/// The marker directives start with (after `//` / `/*` and whitespace).
const MARKER: &str = "uni-lint:";

pub fn lex(src: &str) -> Lexed {
    Lexer::new(src).run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    out: Lexed,
}

impl Lexer {
    fn new(src: &str) -> Self {
        Self {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            out: Lexed::default(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(),
                '\'' => self.lifetime_or_char(),
                '#' => self.attribute_or_hash(line, col),
                ':' if self.peek(1) == Some(':') => {
                    self.bump();
                    self.bump();
                    self.push("::", line, col);
                }
                c if c == '_' || c.is_alphabetic() => self.ident_or_prefixed_string(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                _ => {
                    self.bump();
                    self.push(&c.to_string(), line, col);
                }
            }
        }
        self.out
    }

    fn push(&mut self, text: &str, line: u32, col: u32) {
        self.out.tokens.push(Tok {
            text: text.to_string(),
            line,
            col,
        });
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut body = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            body.push(c);
            self.bump();
        }
        self.directive_from_comment(&body, line);
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let mut body = String::new();
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                body.push(c);
                self.bump();
            }
        }
        self.directive_from_comment(&body, line);
    }

    /// Parses a directive out of a stripped comment body, if the marker
    /// is present.
    fn directive_from_comment(&mut self, body: &str, line: u32) {
        // Tolerate doc-comment leaders and padding: `/// uni-lint: hot`.
        let trimmed = body.trim_start_matches(['/', '!', '*', ' ', '\t']);
        let Some(rest) = trimmed.strip_prefix(MARKER) else {
            return;
        };
        let rest = rest.trim();
        let directive = if rest == "hot" {
            Directive::Hot { line }
        } else if let Some(args) = rest.strip_prefix("allow") {
            parse_allow(args.trim(), line)
        } else {
            Directive::Malformed {
                line,
                message: format!(
                    "unknown uni-lint directive {rest:?} (expected `hot` or `allow(RULE, reason)`)"
                ),
            }
        };
        self.out.directives.push(directive);
    }

    fn string_literal(&mut self) {
        self.bump(); // opening '"'
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// `r"..."` / `r#"..."#` / `b"..."` / `br##"..."##` — called when an
    /// identifier turned out to be a raw/byte string prefix.
    fn raw_string(&mut self, hashes: usize) {
        for _ in 0..hashes {
            self.bump(); // '#'
        }
        self.bump(); // '"'
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for ahead in 0..hashes {
                    if self.peek(ahead) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
    }

    fn lifetime_or_char(&mut self) {
        self.bump(); // '\''
        match self.peek(0) {
            // Escape sequence: definitely a char literal.
            Some('\\') => {
                self.bump();
                self.bump(); // the escaped char (or '{' of \u{...})
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
            }
            Some(c) if c == '_' || c.is_alphabetic() => {
                // `'a` (lifetime) vs `'a'` (char literal): a closing
                // quote right after one ident char decides.
                if self.peek(1) == Some('\'') {
                    self.bump();
                    self.bump();
                } else {
                    // Lifetime: consume the ident, emit nothing (rules
                    // never match lifetimes).
                    while let Some(c) = self.peek(0) {
                        if c == '_' || c.is_alphanumeric() {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
            }
            // Any other single-char literal.
            Some(_) => {
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
            }
            None => {}
        }
    }

    /// Strips `#[...]` / `#![...]` outer and inner attributes (string
    /// aware, bracket balanced); a bare `#` is kept as punctuation.
    fn attribute_or_hash(&mut self, line: u32, col: u32) {
        let bang = usize::from(self.peek(1) == Some('!'));
        if self.peek(1 + bang) != Some('[') {
            self.bump();
            self.push("#", line, col);
            return;
        }
        self.bump(); // '#'
        if bang == 1 {
            self.bump(); // '!'
        }
        self.bump(); // '['
        let mut depth = 1usize;
        while depth > 0 {
            match self.peek(0) {
                Some('[') => {
                    depth += 1;
                    self.bump();
                }
                Some(']') => {
                    depth -= 1;
                    self.bump();
                }
                Some('"') => self.string_literal(),
                Some('\'') => self.lifetime_or_char(),
                Some(_) => {
                    self.bump();
                }
                None => break,
            }
        }
    }

    fn ident_or_prefixed_string(&mut self, line: u32, col: u32) {
        let mut ident = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                ident.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Raw / byte string prefixes: the "identifier" was `r`, `b`,
        // `br`, or `rb` glued to a string opener.
        if matches!(ident.as_str(), "r" | "b" | "br" | "rb") {
            let mut hashes = 0usize;
            while self.peek(hashes) == Some('#') {
                hashes += 1;
            }
            if self.peek(hashes) == Some('"') {
                if hashes == 0 && ident == "b" {
                    self.string_literal();
                } else {
                    self.raw_string(hashes);
                }
                return;
            }
            if ident == "b" && self.peek(0) == Some('\'') {
                self.lifetime_or_char();
                return;
            }
        }
        self.push(&ident, line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.'
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                && !text.contains('.')
            {
                // `1.5` continues the number; `0..n` and `1.method()` do
                // not.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(&text, line, col);
    }
}

/// Parses the argument list of `allow(RULE, reason...)`.
fn parse_allow(args: &str, line: u32) -> Directive {
    let Some(inner) = args.strip_prefix('(').and_then(|a| a.strip_suffix(')')) else {
        return Directive::Malformed {
            line,
            message: "malformed allow directive: expected `allow(RULE, reason)`".to_string(),
        };
    };
    let (rule, reason) = match inner.split_once(',') {
        Some((rule, reason)) => (rule.trim(), reason.trim()),
        None => (inner.trim(), ""),
    };
    if rule.is_empty() {
        return Directive::Malformed {
            line,
            message: "allow directive names no rule: expected `allow(RULE, reason)`".to_string(),
        };
    }
    if reason.is_empty() {
        return Directive::Malformed {
            line,
            message: format!(
                "allow({rule}) has no reason — suppressions must say why: `allow({rule}, because ...)`"
            ),
        };
    }
    Directive::Allow {
        line,
        rule: rule.to_ascii_uppercase(),
        reason: reason.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn strips_comments_strings_and_attributes() {
        let src = r##"
            // Instant in a comment
            /* HashMap in /* a nested */ block */
            #[derive(Serialize)]
            fn f() { let s = "Instant-NGP"; let r = r#"SystemTime"#; }
        "##;
        let toks = texts(src);
        assert!(!toks.contains(&"Instant".to_string()));
        assert!(!toks.contains(&"HashMap".to_string()));
        assert!(!toks.contains(&"Serialize".to_string()));
        assert!(!toks.contains(&"SystemTime".to_string()));
        assert!(toks.contains(&"fn".to_string()));
    }

    #[test]
    fn merges_path_separators_and_keeps_positions() {
        let lexed = lex("a::b");
        let t: Vec<&str> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(t, ["a", "::", "b"]);
        assert_eq!(lexed.tokens[1].line, 1);
        assert_eq!(lexed.tokens[1].col, 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = texts("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        assert!(toks.contains(&"str".to_string()));
        assert!(!toks.contains(&"x'".to_string()));
        // The brace structure survives the char literals.
        assert_eq!(toks.iter().filter(|t| t.as_str() == "{").count(), 1);
        assert_eq!(toks.iter().filter(|t| t.as_str() == "}").count(), 1);
    }

    #[test]
    fn parses_hot_and_allow_directives() {
        let lexed = lex("// uni-lint: hot\nfn f() {}\n// uni-lint: allow(R1, seed baseline)\n");
        assert_eq!(lexed.directives.len(), 2);
        assert_eq!(lexed.directives[0], Directive::Hot { line: 1 });
        assert_eq!(
            lexed.directives[1],
            Directive::Allow {
                line: 3,
                rule: "R1".to_string(),
                reason: "seed baseline".to_string(),
            }
        );
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        let lexed =
            lex("// uni-lint: allow(R3)\n// uni-lint: allow(R3,)\n// uni-lint: frobnicate\n");
        assert_eq!(lexed.directives.len(), 3);
        for d in &lexed.directives {
            assert!(matches!(d, Directive::Malformed { .. }), "{d:?}");
        }
    }
}
