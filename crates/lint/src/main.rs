//! CLI for `uni-lint`.
//!
//! ```text
//! uni-lint [--deny-all] [--json] [--allow RULE]... [--root DIR] [PATH]...
//! ```
//!
//! With no `PATH`s the whole workspace is scanned (the directory holding
//! the workspace `Cargo.toml`, found by walking up from the cwd; `--root`
//! overrides). Exit status: 0 clean, 1 findings, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;
use uni_lint::{render_json, render_text, rules, run, Config};

fn main() -> ExitCode {
    let mut config = Config::default();
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => config.deny_all = true,
            "--json" => json = true,
            "--allow" => match args.next() {
                Some(rule) if rules::rule_by_id(&rule).is_some() => {
                    config.allowed_rules.insert(rule.to_ascii_uppercase());
                }
                Some(rule) => return usage(&format!("unknown rule {rule:?}")),
                None => return usage("--allow needs a rule id (R1..R7)"),
            },
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--rules" => {
                for r in &rules::RULES {
                    println!("{}  {:<24} {}", r.id, r.name, r.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "uni-lint [--deny-all] [--json] [--allow RULE]... [--root DIR] [PATH]...\n\
                     Machine-enforces the workspace determinism & hot-path contracts (see --rules)."
                );
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => return usage(&format!("unknown flag {arg:?}")),
            _ => paths.push(PathBuf::from(arg)),
        }
    }

    let root = root.unwrap_or_else(workspace_root);
    match run(&root, &paths, &config) {
        Ok(report) => {
            if json {
                print!("{}", render_json(&report));
            } else {
                print!("{}", render_text(&report));
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("uni-lint: {err}");
            ExitCode::from(2)
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("uni-lint: {msg} (try --help)");
    ExitCode::from(2)
}

/// Nearest ancestor of the cwd whose `Cargo.toml` declares a
/// `[workspace]`; falls back to the cwd.
fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.clone();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return cwd;
        }
    }
}
