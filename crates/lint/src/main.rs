//! CLI for `uni-lint`.
//!
//! ```text
//! uni-lint [--deny-all] [--json] [--allow RULE]... [--root DIR]
//!          [--baseline FILE] [--write-baseline FILE] [--audit] [PATH]...
//! ```
//!
//! With no `PATH`s the whole workspace is scanned (the directory holding
//! the workspace `Cargo.toml`, found by walking up from the cwd; `--root`
//! overrides). `--baseline` applies the R11 ratchet: findings in the
//! committed snapshot downgrade to warnings, anything new (including any
//! suppression not in the snapshot) stays denied. `--write-baseline`
//! blesses the current state. `--audit` prints every suppression with
//! its mandatory reason. Exit status: 0 clean, 1 findings, 2 usage/IO
//! error.

use std::path::PathBuf;
use std::process::ExitCode;
use uni_lint::{baseline::Baseline, render_json, render_text, rules, run, Config};

fn main() -> ExitCode {
    let mut config = Config::default();
    let mut json = false;
    let mut audit = false;
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => config.deny_all = true,
            "--json" => json = true,
            "--audit" => audit = true,
            "--allow" => match args.next() {
                Some(rule) if rules::rule_by_id(&rule).is_some() => {
                    config.allowed_rules.insert(rule.to_ascii_uppercase());
                }
                Some(rule) => return usage(&format!("unknown rule {rule:?}")),
                None => return usage("--allow needs a rule id (R1..R11)"),
            },
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--baseline" => match args.next() {
                Some(file) => baseline_path = Some(PathBuf::from(file)),
                None => return usage("--baseline needs a file"),
            },
            "--write-baseline" => match args.next() {
                Some(file) => write_baseline = Some(PathBuf::from(file)),
                None => return usage("--write-baseline needs a file"),
            },
            "--rules" => {
                for r in &rules::RULES {
                    println!("{}  {:<24} {}", r.id, r.name, r.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "uni-lint [--deny-all] [--json] [--allow RULE]... [--root DIR]\n\
                     \x20        [--baseline FILE] [--write-baseline FILE] [--audit] [PATH]...\n\
                     Machine-enforces the workspace determinism & hot-path contracts (see --rules)."
                );
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => return usage(&format!("unknown flag {arg:?}")),
            _ => paths.push(PathBuf::from(arg)),
        }
    }

    let root = root.unwrap_or_else(workspace_root);
    let mut report = match run(&root, &paths, &config) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("uni-lint: {err}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = write_baseline {
        let snapshot = Baseline::from_report(&report);
        if let Err(err) = std::fs::write(&path, snapshot.render()) {
            eprintln!("uni-lint: writing {}: {err}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "uni-lint: baseline written to {} ({} finding key(s), {} suppression key(s))",
            path.display(),
            snapshot.findings.len(),
            snapshot.allows.len()
        );
        return ExitCode::SUCCESS;
    }

    if let Some(path) = &baseline_path {
        // Relative baseline paths resolve against the workspace root, so
        // the CI invocation works from any cwd.
        let resolved = if path.is_absolute() {
            path.clone()
        } else {
            root.join(path)
        };
        let src = match std::fs::read_to_string(&resolved) {
            Ok(src) => src,
            Err(err) => {
                eprintln!("uni-lint: reading baseline {}: {err}", resolved.display());
                return ExitCode::from(2);
            }
        };
        let baseline = match Baseline::parse(&src) {
            Ok(b) => b,
            Err(err) => {
                eprintln!("uni-lint: baseline {}: {err}", resolved.display());
                return ExitCode::from(2);
            }
        };
        for note in baseline.rebase(&mut report) {
            eprintln!("uni-lint: note: {note}");
        }
    }

    if json {
        print!("{}", render_json(&report));
    } else {
        print!("{}", render_text(&report));
    }
    if audit {
        println!(
            "uni-lint audit: {} suppression(s) in force",
            report.allows_used.len()
        );
        for a in &report.allows_used {
            println!("  {}:{}: allow({}) — {}", a.path, a.line, a.rule, a.reason);
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("uni-lint: {msg} (try --help)");
    ExitCode::from(2)
}

/// Nearest ancestor of the cwd whose `Cargo.toml` declares a
/// `[workspace]`; falls back to the cwd.
fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.clone();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return cwd;
        }
    }
}
