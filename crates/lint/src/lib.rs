//! `uni-lint` — the workspace's own static-analysis pass.
//!
//! ROADMAP.md's standing conventions (flat buffers, uni-parallel-only
//! threading, total float orders, schedule-order-only accounting, pure
//! policies, allocation-free hot loops) used to be enforced by review.
//! This crate machine-enforces them: a dependency-free lexer strips
//! comments/strings/attributes, a context tracker follows `impl`/`fn`
//! nesting, and eleven deny-by-default rules (see [`rules::RULES`]) turn
//! each convention into `file:line:col` diagnostics. R1–R7 are
//! single-function passes; R8–R10 run over a whole-workspace call graph
//! ([`graph`]) so the no-alloc, determinism, and lock-order contracts
//! follow calls instead of stopping at the first `fn` boundary; R11
//! ratchets findings and suppressions against a committed baseline
//! ([`baseline`]). Suppression is explicit and audited:
//! `// uni-lint: allow(RULE, reason)` with a mandatory reason, counted
//! in every report and gated by the baseline.
//!
//! Run it as `cargo run -p uni-lint -- --deny-all` (CI does, between
//! clippy and the build).

pub mod baseline;
pub mod graph;
pub mod lexer;
pub mod rules;

use lexer::Directive;
use rules::RawDiag;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// How a run treats each rule.
#[derive(Debug, Default, Clone)]
pub struct Config {
    /// Rule IDs demoted to warnings (`--allow R5`). Reported, never
    /// fatal.
    pub allowed_rules: BTreeSet<String>,
    /// `--deny-all`: every rule is fatal regardless of `allowed_rules`.
    pub deny_all: bool,
}

impl Config {
    fn denies(&self, rule: &str) -> bool {
        self.deny_all || !self.allowed_rules.contains(&rule.to_ascii_uppercase())
    }
}

/// One reported finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub rule: String,
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
    /// Whether this finding fails the run (false only for `--allow`ed
    /// rules without `--deny-all`).
    pub denied: bool,
}

/// One `allow` directive that actually suppressed a finding.
#[derive(Debug, Clone)]
pub struct UsedAllow {
    pub rule: String,
    pub path: String,
    pub line: u32,
    pub reason: String,
}

/// The outcome of a whole run.
#[derive(Debug, Default)]
pub struct Report {
    pub files_scanned: usize,
    pub diagnostics: Vec<Diagnostic>,
    pub allows_used: Vec<UsedAllow>,
}

impl Report {
    pub fn denied_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.denied).count()
    }

    pub fn is_clean(&self) -> bool {
        self.denied_count() == 0
    }
}

/// Lints a set of files as one workspace: intra-function rules R1–R7
/// per file, then the interprocedural rules R8–R10 over the combined
/// call graph, then allow-directive filtering per file. Diagnostics are
/// sorted by (path, line, col, rule) and deduplicated, so output is
/// stable regardless of walk order — the property the baseline diff and
/// the exact-snapshot selftests rely on.
pub fn analyze_files(files: &[(String, String)], config: &Config) -> Report {
    let mut ws = graph::Workspace::default();
    let mut lexed_files = Vec::with_capacity(files.len());
    for (path, src) in files {
        let lexed = lexer::lex(src);
        ws.index_file(path, &lexed);
        lexed_files.push(lexed);
    }
    let ws_diags = graph::check_workspace(&ws);

    let mut report = Report::default();
    for (fi, (path, _)) in files.iter().enumerate() {
        let mut raw = rules::check(path, &lexed_files[fi]);
        raw.extend(
            ws_diags
                .iter()
                .filter(|w| w.file == fi)
                .map(|w| w.diag.clone()),
        );
        apply_allows(path, &lexed_files[fi], raw, config, &mut report);
        report.files_scanned += 1;
    }

    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.col, &a.rule).cmp(&(&b.path, b.line, b.col, &b.rule)));
    report.diagnostics.dedup_by(|a, b| {
        a.path == b.path
            && a.line == b.line
            && a.col == b.col
            && a.rule == b.rule
            && a.message == b.message
    });
    report
        .allows_used
        .sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    report
}

/// Lints one file's source under a (virtual) workspace-relative path.
/// The path drives rule scoping, so self-tests can lint fixture text as
/// if it lived in any crate. The interprocedural rules see just this
/// file's call graph.
pub fn analyze_source(path: &str, src: &str, config: &Config, report: &mut Report) {
    let single = analyze_files(&[(path.to_string(), src.to_string())], config);
    report.files_scanned += single.files_scanned;
    report.diagnostics.extend(single.diagnostics);
    report.allows_used.extend(single.allows_used);
}

/// Filters raw diagnostics through the file's `allow` directives and
/// records malformed directives as denied findings.
fn apply_allows(
    path: &str,
    lexed: &lexer::Lexed,
    raw: Vec<RawDiag>,
    config: &Config,
    report: &mut Report,
) {
    let allows: Vec<(&u32, &String, &String)> = lexed
        .directives
        .iter()
        .filter_map(|d| match d {
            Directive::Allow { line, rule, reason } => Some((line, rule, reason)),
            _ => None,
        })
        .collect();

    // Malformed directives are findings themselves: a suppression that
    // does not parse must fail loudly, not silently stop suppressing.
    for d in &lexed.directives {
        if let Directive::Malformed { line, message } = d {
            report.diagnostics.push(Diagnostic {
                rule: "LINT".to_string(),
                path: path.to_string(),
                line: *line,
                col: 1,
                message: message.clone(),
                denied: true,
            });
        }
    }

    let mut used: Vec<bool> = vec![false; allows.len()];
    for d in raw {
        let suppressed = allows.iter().enumerate().find(|(_, (line, rule, _))| {
            rule.eq_ignore_ascii_case(d.rule) && (**line == d.line || **line + 1 == d.line)
        });
        if let Some((ai, (line, rule, reason))) = suppressed {
            if !used[ai] {
                used[ai] = true;
                report.allows_used.push(UsedAllow {
                    rule: (*rule).clone(),
                    path: path.to_string(),
                    line: **line,
                    reason: (*reason).clone(),
                });
            }
            continue;
        }
        let RawDiag {
            rule,
            line,
            col,
            message,
        } = d;
        report.diagnostics.push(Diagnostic {
            rule: rule.to_string(),
            path: path.to_string(),
            line,
            col,
            message,
            denied: config.denies(rule),
        });
    }
}

/// Directory names never descended into.
fn skip_dir(path: &Path) -> bool {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    matches!(name, "target" | "vendor" | ".git")
        // The lint's own known-bad test corpus must not lint the
        // workspace red.
        || path.ends_with("crates/lint/fixtures")
}

/// Collects every `.rs` file under `root` (sorted, deterministic),
/// honoring [`skip_dir`].
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for entry in entries {
            if entry.is_dir() {
                if !skip_dir(&entry) {
                    stack.push(entry);
                }
            } else if entry.extension().is_some_and(|e| e == "rs") {
                files.push(entry);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints `files` (or, when empty, the whole tree under `root`) as one
/// workspace, so the interprocedural rules see cross-crate calls.
pub fn run(root: &Path, files: &[PathBuf], config: &Config) -> std::io::Result<Report> {
    let files = if files.is_empty() {
        collect_files(root)?
    } else {
        files.to_vec()
    };
    let mut inputs = Vec::with_capacity(files.len());
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(file)?;
        inputs.push((rel, src));
    }
    Ok(analyze_files(&inputs, config))
}

/// Human-readable report (one diagnostic per line, then the audit trail
/// of used suppressions, then a summary).
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        let verdict = if d.denied { "deny" } else { "warn" };
        out.push_str(&format!(
            "{}:{}:{}: [{}/{}] {}\n",
            d.path, d.line, d.col, d.rule, verdict, d.message
        ));
    }
    for a in &report.allows_used {
        out.push_str(&format!(
            "{}:{}: allow({}) — {}\n",
            a.path, a.line, a.rule, a.reason
        ));
    }
    out.push_str(&format!(
        "uni-lint: {} file(s), {} finding(s) ({} denied), {} suppression(s) used\n",
        report.files_scanned,
        report.diagnostics.len(),
        report.denied_count(),
        report.allows_used.len()
    ));
    out
}

/// Machine-readable report: a stable-shaped JSON object (hand-rolled —
/// the lint is dependency-free by design).
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"diagnostics\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"col\": {}, \"denied\": {}, \"message\": {}}}",
            json_str(&d.rule),
            json_str(&d.path),
            d.line,
            d.col,
            d.denied,
            json_str(&d.message)
        ));
    }
    out.push_str("\n  ],\n  \"allows\": [");
    for (i, a) in report.allows_used.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"reason\": {}}}",
            json_str(&a.rule),
            json_str(&a.path),
            a.line,
            json_str(&a.reason)
        ));
    }
    out.push_str(&format!(
        "\n  ],\n  \"summary\": {{\"files\": {}, \"findings\": {}, \"denied\": {}, \"allows_used\": {}}}\n}}\n",
        report.files_scanned,
        report.diagnostics.len(),
        report.denied_count(),
        report.allows_used.len()
    ));
    out
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> Report {
        let mut report = Report::default();
        analyze_source(path, src, &Config::default(), &mut report);
        report
    }

    #[test]
    fn allow_on_previous_line_suppresses_and_is_audited() {
        let src =
            "// uni-lint: allow(R3, fixture of the seed comparator)\nlet o = a.partial_cmp(&b);\n";
        let report = lint("crates/x/src/lib.rs", src);
        assert!(report.is_clean(), "{:?}", report.diagnostics);
        assert_eq!(report.allows_used.len(), 1);
        assert_eq!(report.allows_used[0].rule, "R3");
    }

    #[test]
    fn allow_does_not_leak_past_the_next_line() {
        let src = "// uni-lint: allow(R3, only the first)\nlet o = a.partial_cmp(&b);\nlet p = a.partial_cmp(&b);\n";
        let report = lint("crates/x/src/lib.rs", src);
        assert_eq!(report.denied_count(), 1);
        assert_eq!(report.allows_used.len(), 1);
    }

    #[test]
    fn allow_for_the_wrong_rule_suppresses_nothing() {
        let src = "// uni-lint: allow(R1, wrong rule)\nlet o = a.partial_cmp(&b);\n";
        let report = lint("crates/x/src/lib.rs", src);
        assert_eq!(report.denied_count(), 1);
        assert!(report.allows_used.is_empty());
    }

    #[test]
    fn malformed_directive_is_a_denied_finding() {
        let report = lint("crates/x/src/lib.rs", "// uni-lint: allow(R3)\n");
        assert_eq!(report.denied_count(), 1);
        assert_eq!(report.diagnostics[0].rule, "LINT");
    }

    #[test]
    fn allowed_rule_downgrades_unless_deny_all() {
        let src = "let o = a.partial_cmp(&b);\n";
        let mut config = Config::default();
        config.allowed_rules.insert("R3".to_string());
        let mut report = Report::default();
        analyze_source("crates/x/src/lib.rs", src, &config, &mut report);
        assert_eq!(report.diagnostics.len(), 1);
        assert!(report.is_clean());

        config.deny_all = true;
        let mut report = Report::default();
        analyze_source("crates/x/src/lib.rs", src, &config, &mut report);
        assert_eq!(report.denied_count(), 1);
    }

    #[test]
    fn json_report_shape_is_stable() {
        let report = lint(
            "crates/x/src/lib.rs",
            "// uni-lint: allow(R3, audited)\nlet o = a.partial_cmp(&b);\nlet p = b.partial_cmp(&a);\n",
        );
        let json = render_json(&report);
        let expected = "{\n  \"version\": 1,\n  \"diagnostics\": [\n    {\"rule\": \"R3\", \"path\": \"crates/x/src/lib.rs\", \"line\": 3, \"col\": 11, \"denied\": true, \"message\": \"partial_cmp orders floats partially (NaN breaks determinism): use f32::total_cmp / f64::total_cmp (found `partial_cmp`)\"}\n  ],\n  \"allows\": [\n    {\"rule\": \"R3\", \"path\": \"crates/x/src/lib.rs\", \"line\": 1, \"reason\": \"audited\"}\n  ],\n  \"summary\": {\"files\": 1, \"findings\": 1, \"denied\": 1, \"allows_used\": 1}\n}\n";
        assert_eq!(json, expected);
    }
}
