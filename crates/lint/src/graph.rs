//! Workspace call-graph construction and the interprocedural rules.
//!
//! PR 7's rules look at one function body at a time; the serving
//! contract does not. A `SchedulePolicy::pick` that calls a helper that
//! calls `Instant::now()` is just as non-deterministic as one that reads
//! the clock inline, and a `// uni-lint: hot` render loop that calls an
//! allocating helper two frames of inlining away still allocates per
//! frame. This module builds a whole-workspace call graph from the
//! stripped token stream — `fn` definitions with their `impl` context,
//! call sites resolved by name with impl-context disambiguation,
//! *conservative on ambiguity* (an ambiguous name links to every
//! same-named candidate) — and runs three rules over it:
//!
//! - **R8 transitive-hot**: R7's no-allocation contract propagated from
//!   every hot function through all workspace callees, diagnostics
//!   carrying the full call chain (`render_rows -> helper -> vec!`).
//! - **R9 determinism taint**: wall-clock reads and unordered-map use
//!   flagged in any function reachable from a `SchedulePolicy` impl or
//!   a `RenderServer` method, not just inside the path-scoped modules
//!   R4/R5 watch.
//! - **R10 lock-order**: a Mutex acquisition graph (lexical guard
//!   scopes, interprocedural edges through calls made under a held
//!   guard); cycles are denied, as is holding any guard across
//!   `Ticket::wait` or lane submission (`submit`/`submit_at`).
//!
//! The graph is name-based, not type-checked: a method call resolves to
//! every workspace method of that name unless the receiver is `self` or
//! the call is `Type::`-qualified. That over-approximates reachability,
//! which is the safe direction for all three rules.

use crate::lexer::{Directive, Lexed, Tok};
use crate::rules::{self, RawDiag};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A source location plus the offending token, for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    pub line: u32,
    pub col: u32,
    pub what: String,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub name: String,
    /// `Type` in `Type::name(..)` (or `Self`); `None` for bare and
    /// method calls.
    pub qualifier: Option<String>,
    /// `receiver.name(..)`.
    pub method: bool,
    /// `self.name(..)` — resolvable against the surrounding impl.
    pub self_recv: bool,
    pub line: u32,
    pub col: u32,
}

/// A `receiver.lock()` acquisition.
#[derive(Debug, Clone)]
pub struct LockUse {
    /// The last identifier of the receiver chain (`self.state.lock()`
    /// -> `state`). Locks with the same field name unify into one graph
    /// node — conservative for cycle detection.
    pub lock: String,
    pub line: u32,
    pub col: u32,
}

/// A blocking boundary: `.wait(` on a ticket or `.submit(`/`.submit_at(`
/// lane submission.
#[derive(Debug, Clone)]
pub struct WaitUse {
    pub what: String,
    pub line: u32,
    pub col: u32,
}

/// One `fn` item (free function, inherent/trait-impl method, or trait
/// default method) with everything the interprocedural rules need.
#[derive(Debug, Clone)]
pub struct FnDef {
    pub file: usize,
    pub name: String,
    /// Surrounding `impl Type` / `trait Type` block, if any.
    pub impl_type: Option<String>,
    /// `Trait` in `impl Trait for Type`; for trait declarations the
    /// trait's own name.
    pub impl_trait: Option<String>,
    pub line: u32,
    pub col: u32,
    /// Carries a `// uni-lint: hot` marker (R7 already covers it).
    pub hot: bool,
    pub calls: Vec<CallSite>,
    /// R7-pattern allocation sites in this body.
    pub allocs: Vec<Site>,
    /// Wall-clock idents (R4 pattern) in this body.
    pub wall_clocks: Vec<Site>,
    /// `HashMap`/`HashSet` idents (R5 pattern) in this body.
    pub unordered: Vec<Site>,
    /// Every lock acquisition in this body.
    pub locks: Vec<LockUse>,
    /// Every blocking boundary in this body.
    pub waits: Vec<WaitUse>,
    /// (held lock, acquired lock) pairs observed lexically in-body.
    pub lock_edges: Vec<(String, LockUse)>,
    /// Blocking boundaries reached while a guard was held.
    pub waits_under_lock: Vec<(String, WaitUse)>,
    /// Calls made while a guard was held: (held lock, index into
    /// `calls`).
    pub calls_under_lock: Vec<(String, usize)>,
}

impl FnDef {
    /// `Type::name` for methods, bare `name` for free functions — the
    /// spelling diagnostics print in call chains.
    pub fn display(&self) -> String {
        match &self.impl_type {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Every file's function definitions, indexed for name resolution.
#[derive(Debug, Default)]
pub struct Workspace {
    pub files: Vec<String>,
    pub fns: Vec<FnDef>,
}

impl Workspace {
    /// Registers `path` and extracts its function definitions.
    pub fn index_file(&mut self, path: &str, lexed: &Lexed) {
        let file = self.files.len();
        self.files.push(path.to_string());
        extract(file, lexed, &mut self.fns);
    }

    pub fn fn_named(&self, name: &str) -> Vec<usize> {
        (0..self.fns.len())
            .filter(|&i| self.fns[i].name == name)
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Extraction: one linear pass per file, tracking impl/fn nesting, guard
// scopes, and call/alloc/taint/lock sites.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Scope {
    Block,
    Impl {
        ty: Option<String>,
        trait_: Option<String>,
    },
    Fn {
        id: usize,
        guard_base: usize,
    },
}

#[derive(Debug)]
struct Guard {
    lock: String,
    /// `let`-bound variable name, when the guard is the whole RHS — lets
    /// `drop(var)` release it early.
    var: Option<String>,
    /// Brace depth at acquisition; the guard dies when the block closes.
    brace: usize,
    /// Expression temporary: dies at the statement's `;` instead.
    stmt_scoped: bool,
}

/// Keywords that look like `ident (` but are never calls.
const NOT_CALLS: [&str; 14] = [
    "if", "while", "for", "match", "return", "loop", "fn", "in", "as", "move", "where", "unsafe",
    "else", "let",
];

fn extract(file: usize, lexed: &Lexed, fns: &mut Vec<FnDef>) {
    let toks = &lexed.tokens;
    let text = |i: usize| toks.get(i).map(|t| t.text.as_str()).unwrap_or("");
    let mut hot_lines: Vec<u32> = lexed
        .directives
        .iter()
        .filter_map(|d| match d {
            Directive::Hot { line } => Some(*line),
            _ => None,
        })
        .collect();
    hot_lines.reverse(); // pop() yields source order

    let mut scopes: Vec<Scope> = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    let mut pending_impl: Option<(Option<String>, Option<String>)> = None;
    let mut pending_fn: Option<usize> = None;
    let mut grouping_depth = 0i64;
    let mut brace_depth = 0usize;
    // `let`-statement tracking for guard scoping.
    let mut stmt_let: Option<Option<String>> = None; // Some(var) once `let [mut] var =` seen

    for i in 0..toks.len() {
        let tok = &toks[i];
        let t = tok.text.as_str();
        match t {
            "(" | "[" => grouping_depth += 1,
            ")" | "]" => grouping_depth -= 1,
            "{" => {
                brace_depth += 1;
                stmt_let = None;
                let scope = if let Some(id) = pending_fn.take() {
                    Scope::Fn {
                        id,
                        guard_base: guards.len(),
                    }
                } else if let Some((ty, trait_)) = pending_impl.take() {
                    Scope::Impl { ty, trait_ }
                } else {
                    Scope::Block
                };
                scopes.push(scope);
            }
            "}" => {
                brace_depth = brace_depth.saturating_sub(1);
                stmt_let = None;
                guards.retain(|g| g.brace <= brace_depth);
                scopes.pop();
            }
            ";" if grouping_depth == 0 => {
                pending_fn = None;
                stmt_let = None;
                guards.retain(|g| !(g.stmt_scoped && g.brace == brace_depth));
            }
            ";" => {
                guards.retain(|g| !(g.stmt_scoped && g.brace == brace_depth));
            }
            "let" if text(i + 1) != "else" => {
                // `if let` / `while let` conditions never bind a guard
                // for the enclosing block.
                let conditional = i > 0 && matches!(text(i - 1), "if" | "while");
                if !conditional {
                    let mut j = i + 1;
                    if text(j) == "mut" {
                        j += 1;
                    }
                    let var = (text(j + 1) == "=" || text(j + 1) == ":")
                        .then(|| text(j).to_string())
                        .filter(|v| !v.is_empty());
                    stmt_let = Some(var);
                }
            }
            "trait" if text(i + 1) != "=" => {
                let name = text(i + 1);
                if !name.is_empty() {
                    pending_impl = Some((Some(name.to_string()), Some(name.to_string())));
                }
            }
            "impl" if !type_position(i, toks) => {
                pending_impl = Some(parse_impl_header(i, toks));
            }
            "fn" if text(i + 1) != "(" => {
                let name = text(i + 1).to_string();
                let mut hot = false;
                while hot_lines.last().is_some_and(|&l| l <= tok.line) {
                    hot_lines.pop();
                    hot = true;
                }
                let (impl_type, impl_trait) = scopes
                    .iter()
                    .rev()
                    .find_map(|s| match s {
                        Scope::Impl { ty, trait_ } => Some((ty.clone(), trait_.clone())),
                        _ => None,
                    })
                    .unwrap_or((None, None));
                fns.push(FnDef {
                    file,
                    name,
                    impl_type,
                    impl_trait,
                    line: tok.line,
                    col: tok.col,
                    hot,
                    calls: Vec::new(),
                    allocs: Vec::new(),
                    wall_clocks: Vec::new(),
                    unordered: Vec::new(),
                    locks: Vec::new(),
                    waits: Vec::new(),
                    lock_edges: Vec::new(),
                    waits_under_lock: Vec::new(),
                    calls_under_lock: Vec::new(),
                });
                pending_fn = Some(fns.len() - 1);
            }
            _ => {}
        }

        // Everything below attaches to the innermost enclosing fn.
        let Some((fn_id, guard_base)) = scopes.iter().rev().find_map(|s| match s {
            Scope::Fn { id, guard_base } => Some((*id, *guard_base)),
            _ => None,
        }) else {
            continue;
        };

        // Allocation / taint sites (same matchers the intra rules use).
        if rules::alloc_token(toks, i) {
            fns[fn_id].allocs.push(site(tok));
        }
        if rules::WALL_CLOCK.contains(&t) {
            fns[fn_id].wall_clocks.push(site(tok));
        }
        if t == "HashMap" || t == "HashSet" {
            fns[fn_id].unordered.push(site(tok));
        }

        // `drop(var)` releases a named guard early.
        if t == "drop" && text(i + 1) == "(" {
            let var = text(i + 2);
            guards.retain(|g| g.var.as_deref() != Some(var));
        }

        let held: Vec<String> = guards[guard_base.min(guards.len())..]
            .iter()
            .map(|g| g.lock.clone())
            .collect();

        // Lock acquisition: `receiver.lock(`.
        if t == "lock" && text(i + 1) == "(" && i > 0 && text(i - 1) == "." {
            let lock = receiver_name(i, toks);
            let use_ = LockUse {
                lock: lock.clone(),
                line: tok.line,
                col: tok.col,
            };
            for h in &held {
                fns[fn_id].lock_edges.push((h.clone(), use_.clone()));
            }
            fns[fn_id].locks.push(use_);
            let stmt_scoped = !guard_is_block_scoped(i, toks, stmt_let.is_some());
            guards.push(Guard {
                lock,
                var: if stmt_scoped {
                    None
                } else {
                    stmt_let.clone().flatten()
                },
                brace: brace_depth,
                stmt_scoped,
            });
            continue;
        }

        // Blocking boundaries: ticket waits and lane submissions.
        if matches!(t, "wait" | "submit" | "submit_at")
            && text(i + 1) == "("
            && i > 0
            && text(i - 1) == "."
        {
            let wu = WaitUse {
                what: t.to_string(),
                line: tok.line,
                col: tok.col,
            };
            for h in &held {
                fns[fn_id].waits_under_lock.push((h.clone(), wu.clone()));
            }
            fns[fn_id].waits.push(wu);
            // fall through: `.wait(` is also a call site (Ticket::wait is
            // a workspace fn), so transitive analysis sees it either way.
        }

        // Call sites.
        if let Some(call) = call_at(i, toks) {
            let idx = fns[fn_id].calls.len();
            for h in &held {
                fns[fn_id].calls_under_lock.push((h.clone(), idx));
            }
            fns[fn_id].calls.push(call);
        }
    }
}

fn site(tok: &Tok) -> Site {
    Site {
        line: tok.line,
        col: tok.col,
        what: tok.text.clone(),
    }
}

/// Whether the `impl` at `i` is type-position rather than an item
/// (mirrors the intra-rule tracker).
fn type_position(i: usize, toks: &[Tok]) -> bool {
    let Some(prev) = i.checked_sub(1).and_then(|p| toks.get(p)) else {
        return false;
    };
    matches!(
        prev.text.as_str(),
        "-" | ">" | ":" | "(" | "," | "<" | "+" | "=" | "&" | "dyn"
    ) || prev.text == "->"
}

/// Parses `impl [<..>] [Trait for] Type [<..>] {` into (type, trait).
fn parse_impl_header(i: usize, toks: &[Tok]) -> (Option<String>, Option<String>) {
    let text = |j: usize| toks.get(j).map(|t| t.text.as_str()).unwrap_or("");
    let mut j = i + 1;
    // Skip the generic parameter list.
    if text(j) == "<" {
        let mut depth = 0i64;
        while j < toks.len() {
            match text(j) {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                "{" => return (None, None),
                _ => {}
            }
            j += 1;
        }
    }
    // First path: either the type (inherent impl) or the trait.
    let first = last_path_segment(&mut j, toks);
    // Skip any `<..>` on the path.
    skip_generics(&mut j, toks);
    if text(j) == "for" {
        j += 1;
        while matches!(text(j), "&" | "dyn" | "mut") {
            j += 1;
        }
        let ty = last_path_segment(&mut j, toks);
        (ty, first)
    } else {
        (first, None)
    }
}

/// Reads a `a::b::C` path at `j`, returning its final segment.
fn last_path_segment(j: &mut usize, toks: &[Tok]) -> Option<String> {
    let text = |j: usize| toks.get(j).map(|t| t.text.as_str()).unwrap_or("");
    let mut last = None;
    loop {
        let t = text(*j);
        if t.is_empty()
            || !t
                .chars()
                .next()
                .is_some_and(|c| c == '_' || c.is_alphabetic())
        {
            break;
        }
        last = Some(t.to_string());
        *j += 1;
        skip_generics(j, toks);
        if text(*j) == "::" {
            *j += 1;
        } else {
            break;
        }
    }
    last
}

fn skip_generics(j: &mut usize, toks: &[Tok]) {
    let text = |j: usize| toks.get(j).map(|t| t.text.as_str()).unwrap_or("");
    if text(*j) != "<" {
        return;
    }
    let mut depth = 0i64;
    while *j < toks.len() {
        match text(*j) {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    *j += 1;
                    return;
                }
            }
            "{" | ";" => return,
            _ => {}
        }
        *j += 1;
    }
}

/// The last identifier of the receiver chain ending at the `.` before
/// token `i` (`self.state.lock` -> `state`, `cells[i].lock` -> `cells`).
fn receiver_name(i: usize, toks: &[Tok]) -> String {
    let text = |j: usize| toks.get(j).map(|t| t.text.as_str()).unwrap_or("");
    let mut j = i.saturating_sub(2); // skip the `.`
    if text(j) == "]" {
        let mut depth = 0i64;
        while j > 0 {
            match text(j) {
                "]" => depth += 1,
                "[" => {
                    depth -= 1;
                    if depth == 0 {
                        j = j.saturating_sub(1);
                        break;
                    }
                }
                _ => {}
            }
            j -= 1;
        }
    }
    if text(j) == ")" {
        // `foo().lock()` — no stable field name; use the call's name.
        let mut depth = 0i64;
        while j > 0 {
            match text(j) {
                ")" => depth += 1,
                "(" => {
                    depth -= 1;
                    if depth == 0 {
                        j = j.saturating_sub(1);
                        break;
                    }
                }
                _ => {}
            }
            j -= 1;
        }
    }
    let name = text(j);
    if name
        .chars()
        .next()
        .is_some_and(|c| c == '_' || c.is_alphabetic())
    {
        name.to_string()
    } else {
        "<expr>".to_string()
    }
}

/// Whether the `.lock()` at `i` is the whole RHS of a `let` statement
/// (modulo `.expect(..)`/`.unwrap()`): then the guard lives to the end
/// of the block, otherwise to the end of the statement.
fn guard_is_block_scoped(i: usize, toks: &[Tok], in_let_stmt: bool) -> bool {
    if !in_let_stmt {
        return false;
    }
    let text = |j: usize| toks.get(j).map(|t| t.text.as_str()).unwrap_or("");
    let mut j = i + 1; // at `(`
    loop {
        // Skip the balanced call parens.
        let mut depth = 0i64;
        while j < toks.len() {
            match text(j) {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if text(j) == "." && matches!(text(j + 1), "expect" | "unwrap") && text(j + 2) == "(" {
            j += 2;
            continue;
        }
        break;
    }
    text(j) == ";"
}

/// Recognizes a call site at token `i`, if any.
fn call_at(i: usize, toks: &[Tok]) -> Option<CallSite> {
    let tok = toks.get(i)?;
    let t = tok.text.as_str();
    if !t
        .chars()
        .next()
        .is_some_and(|c| c == '_' || c.is_alphabetic())
        || NOT_CALLS.contains(&t)
    {
        return None;
    }
    let text = |j: usize| toks.get(j).map(|t| t.text.as_str()).unwrap_or("");
    // `name!(..)` macros are not calls; `fn name(` is a definition.
    if text(i + 1) == "!" || (i > 0 && text(i - 1) == "fn") {
        return None;
    }
    // Allow a turbofish between the name and the parens.
    let mut j = i + 1;
    if text(j) == "::" && text(j + 1) == "<" {
        j += 1;
        skip_generics(&mut j, toks);
    }
    if text(j) != "(" {
        return None;
    }
    let (method, self_recv, qualifier) = if i > 0 && text(i - 1) == "." {
        let recv = receiver_name(i, toks);
        (true, recv == "self", None)
    } else if i >= 2 && text(i - 1) == "::" {
        // Qualified: the segment right before the final `::`. A closing
        // `>` means a generic path (`Foo::<T>::new`); walk to its open.
        let mut q = i - 2;
        if text(q) == ">" {
            let mut depth = 0i64;
            while q > 0 {
                match text(q) {
                    ">" => depth += 1,
                    "<" => {
                        depth -= 1;
                        if depth == 0 {
                            q = q.saturating_sub(1);
                            break;
                        }
                    }
                    _ => {}
                }
                q -= 1;
            }
            if text(q) == "::" {
                q = q.saturating_sub(1);
            }
        }
        (false, false, Some(text(q).to_string()))
    } else {
        (false, false, None)
    };
    Some(CallSite {
        name: t.to_string(),
        qualifier,
        method,
        self_recv,
        line: tok.line,
        col: tok.col,
    })
}

// ---------------------------------------------------------------------------
// Resolution + reachability
// ---------------------------------------------------------------------------

/// Name-resolution index over a [`Workspace`].
pub struct CallGraph<'a> {
    ws: &'a Workspace,
    methods: BTreeMap<&'a str, Vec<usize>>,
    free: BTreeMap<&'a str, Vec<usize>>,
}

/// Method names shared with std (slices, iterators, options, atomics,
/// str). Resolving a bare `recv.iter()` against every workspace `iter`
/// would wire the graph to unrelated types through the std prelude, so
/// calls through these names resolve only when the receiver is `self`
/// (same-impl match) or the call is `Type::`-qualified. Blocking
/// boundaries (`wait`/`submit`) are deliberately absent: those must stay
/// conservative.
const STD_SHADOWED: [&str; 36] = [
    "iter",
    "iter_mut",
    "into_iter",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "len",
    "is_empty",
    "clone",
    "next",
    "parse",
    "load",
    "store",
    "swap",
    "take",
    "clear",
    "extend",
    "contains",
    "last",
    "first",
    "drain",
    "fill",
    "split_at",
    "chunks",
    "windows",
    "zip",
    "map",
    "filter",
    "fold",
    "rev",
    "min",
    "max",
    "find",
];

impl<'a> CallGraph<'a> {
    pub fn build(ws: &'a Workspace) -> Self {
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in ws.fns.iter().enumerate() {
            if f.impl_type.is_some() {
                methods.entry(&f.name).or_default().push(i);
            } else {
                free.entry(&f.name).or_default().push(i);
            }
        }
        Self { ws, methods, free }
    }

    /// Resolves one call site to every plausible workspace callee.
    /// Conservative: ambiguity links to all candidates; unknown names
    /// (std/core) resolve to nothing.
    pub fn resolve(&self, caller: usize, call: &CallSite) -> Vec<usize> {
        let fns = &self.ws.fns;
        let name = call.name.as_str();
        if let Some(q) = &call.qualifier {
            let ty = if q == "Self" {
                fns[caller].impl_type.clone()
            } else {
                Some(q.clone())
            };
            let typed: Vec<usize> = self
                .methods
                .get(name)
                .map(|c| {
                    c.iter()
                        .copied()
                        .filter(|&i| fns[i].impl_type == ty)
                        .collect()
                })
                .unwrap_or_default();
            if !typed.is_empty() {
                return typed;
            }
            // `module::free_fn(..)` — the qualifier was a module path.
            return self.free.get(name).cloned().unwrap_or_default();
        }
        if call.method {
            if call.self_recv {
                if let Some(ty) = &fns[caller].impl_type {
                    let own: Vec<usize> = self
                        .methods
                        .get(name)
                        .map(|c| {
                            c.iter()
                                .copied()
                                .filter(|&i| fns[i].impl_type.as_ref() == Some(ty))
                                .collect()
                        })
                        .unwrap_or_default();
                    if !own.is_empty() {
                        return own;
                    }
                }
            }
            if STD_SHADOWED.contains(&name) {
                return Vec::new();
            }
            return self.methods.get(name).cloned().unwrap_or_default();
        }
        self.free.get(name).cloned().unwrap_or_default()
    }

    /// BFS from `seeds`, returning each reachable fn's BFS parent (the
    /// seed maps to `None`) — the spine diagnostics print as a chain.
    /// Seeds are visited in order, neighbors in call-site order, so the
    /// chain reported for a given fn is deterministic.
    pub fn reach(&self, seeds: &[usize]) -> BTreeMap<usize, Option<usize>> {
        let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &s in seeds {
            if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(s) {
                e.insert(None);
                queue.push_back(s);
            }
        }
        while let Some(f) = queue.pop_front() {
            let calls = self.ws.fns[f].calls.clone();
            for call in &calls {
                for callee in self.resolve(f, call) {
                    if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(callee) {
                        e.insert(Some(f));
                        queue.push_back(callee);
                    }
                }
            }
        }
        parent
    }

    /// Renders the BFS spine from a seed down to `f`.
    pub fn chain(&self, parent: &BTreeMap<usize, Option<usize>>, f: usize) -> String {
        let mut names = vec![self.ws.fns[f].display()];
        let mut cur = f;
        while let Some(Some(p)) = parent.get(&cur) {
            names.push(self.ws.fns[*p].display());
            cur = *p;
        }
        names.reverse();
        names.join(" -> ")
    }

    /// Transitive closure helpers for the lock rules: every lock name
    /// acquired, and whether any blocking boundary is crossed, in `f` or
    /// anything it can call.
    fn transitive_lock_facts(&self) -> (Vec<BTreeSet<String>>, Vec<bool>) {
        let n = self.ws.fns.len();
        let mut locks: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
        let mut waits: Vec<bool> = vec![false; n];
        for (i, f) in self.ws.fns.iter().enumerate() {
            locks[i].extend(f.locks.iter().map(|l| l.lock.clone()));
            waits[i] = !f.waits.is_empty();
        }
        // Fixpoint over the (small) workspace graph; conservative on
        // recursion by construction.
        loop {
            let mut changed = false;
            for i in 0..n {
                let calls = self.ws.fns[i].calls.clone();
                for call in &calls {
                    for callee in self.resolve(i, call) {
                        if callee == i {
                            continue;
                        }
                        let add: Vec<String> = locks[callee]
                            .iter()
                            .filter(|l| !locks[i].contains(*l))
                            .cloned()
                            .collect();
                        if !add.is_empty() {
                            locks[i].extend(add);
                            changed = true;
                        }
                        if waits[callee] && !waits[i] {
                            waits[i] = true;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        (locks, waits)
    }
}

// ---------------------------------------------------------------------------
// The interprocedural rules
// ---------------------------------------------------------------------------

/// A raw diagnostic tagged with the file it belongs to.
pub struct WorkspaceDiag {
    pub file: usize,
    pub diag: RawDiag,
}

pub fn check_workspace(ws: &Workspace) -> Vec<WorkspaceDiag> {
    let graph = CallGraph::build(ws);
    let mut out = Vec::new();
    check_r8(ws, &graph, &mut out);
    check_r9(ws, &graph, &mut out);
    check_r10(ws, &graph, &mut out);
    out
}

/// R8: allocation anywhere in the call tree under a hot fn. Sites inside
/// hot-marked fns are R7's to report (including its suppressions).
fn check_r8(ws: &Workspace, graph: &CallGraph, out: &mut Vec<WorkspaceDiag>) {
    let mut seeds: Vec<usize> = (0..ws.fns.len()).filter(|&i| ws.fns[i].hot).collect();
    seeds.sort_by_key(|&i| (ws.fns[i].file, ws.fns[i].line));
    if seeds.is_empty() {
        return;
    }
    let reach = graph.reach(&seeds);
    for &f in reach.keys() {
        let def = &ws.fns[f];
        // Hot fns are R7's (including its suppressions); the parallel
        // crate owns the threaded dispatch layer whose per-dispatch
        // O(workers) allocations are the documented exception (mirrors
        // the R2 exemption; `steady_state_alloc` enforces the dynamic
        // bound).
        if def.hot || ws.files[def.file].starts_with("crates/parallel/") {
            continue;
        }
        let chain = graph.chain(&reach, f);
        for a in &def.allocs {
            out.push(WorkspaceDiag {
                file: def.file,
                diag: RawDiag {
                    rule: "R8",
                    line: a.line,
                    col: a.col,
                    message: format!(
                        "allocation in a fn reachable from a `// uni-lint: hot` fn: {chain} -> {} — the whole hot call tree must borrow scratch, not allocate; fix the helper (and mark it hot) or audited-suppress",
                        a.what
                    ),
                },
            });
        }
    }
}

/// R9: determinism taint. Wall clocks and unordered maps in anything
/// reachable from a `SchedulePolicy` impl or a `RenderServer` method,
/// except where the path-scoped intra rules (R4/R5) or the policy-impl
/// scope already report the same site.
fn check_r9(ws: &Workspace, graph: &CallGraph, out: &mut Vec<WorkspaceDiag>) {
    let mut seeds: Vec<usize> = (0..ws.fns.len())
        .filter(|&i| {
            ws.fns[i].impl_trait.as_deref() == Some("SchedulePolicy")
                || ws.fns[i].impl_type.as_deref() == Some("RenderServer")
        })
        .collect();
    seeds.sort_by_key(|&i| (ws.fns[i].file, ws.fns[i].line));
    if seeds.is_empty() {
        return;
    }
    let reach = graph.reach(&seeds);
    for &f in reach.keys() {
        let def = &ws.fns[f];
        let path = &ws.files[def.file];
        let chain = graph.chain(&reach, f);
        let policy_scope = def.impl_trait.as_deref() == Some("SchedulePolicy");
        if !rules::in_scheduling_scope(path) && !policy_scope {
            for s in &def.wall_clocks {
                out.push(WorkspaceDiag {
                    file: def.file,
                    diag: RawDiag {
                        rule: "R9",
                        line: s.line,
                        col: s.col,
                        message: format!(
                            "wall-clock source reachable from the serving contract: {chain} -> {} — delivery, accounting, and deadline metrics are schedule-order facts; thread sim-time through PolicyContext instead",
                            s.what
                        ),
                    },
                });
            }
        }
        if !rules::in_ordered_scope(path) {
            for s in &def.unordered {
                out.push(WorkspaceDiag {
                    file: def.file,
                    diag: RawDiag {
                        rule: "R9",
                        line: s.line,
                        col: s.col,
                        message: format!(
                            "unordered container reachable from the serving contract: {chain} -> {} — iteration order would leak into served state; use BTreeMap/BTreeSet or sort explicitly",
                            s.what
                        ),
                    },
                });
            }
        }
    }
}

/// R10: the lock graph. Denies acquisition-order cycles and guards held
/// across blocking boundaries, both directly and through calls.
fn check_r10(ws: &Workspace, graph: &CallGraph, out: &mut Vec<WorkspaceDiag>) {
    let any_locks = ws.fns.iter().any(|f| !f.locks.is_empty());
    if !any_locks {
        return;
    }
    let (trans_locks, trans_waits) = graph.transitive_lock_facts();

    // Edge set: held -> acquired, with the first site that witnesses it.
    let mut edges: BTreeMap<(String, String), (usize, u32, u32, String)> = BTreeMap::new();
    let mut witness = |from: &str, to: &str, file: usize, line: u32, col: u32, via: String| {
        edges
            .entry((from.to_string(), to.to_string()))
            .or_insert((file, line, col, via));
    };

    for (i, f) in ws.fns.iter().enumerate() {
        for (held, lu) in &f.lock_edges {
            witness(held, &lu.lock, f.file, lu.line, lu.col, f.display());
        }
        for (held, call_idx) in &f.calls_under_lock {
            let call = &f.calls[*call_idx];
            for callee in graph.resolve(i, call) {
                for acquired in &trans_locks[callee] {
                    witness(
                        held,
                        acquired,
                        f.file,
                        call.line,
                        call.col,
                        format!("{} -> {}", f.display(), ws.fns[callee].display()),
                    );
                }
            }
        }

        // Guards held across a blocking boundary.
        let mut reported: BTreeSet<(String, u32, u32)> = BTreeSet::new();
        for (held, wu) in &f.waits_under_lock {
            if reported.insert((held.clone(), wu.line, wu.col)) {
                out.push(WorkspaceDiag {
                    file: f.file,
                    diag: RawDiag {
                        rule: "R10",
                        line: wu.line,
                        col: wu.col,
                        message: format!(
                            "lock `{held}` held across `{}` in {} — blocking on a lane while holding a guard can deadlock the pool; drop the guard first",
                            wu.what,
                            f.display()
                        ),
                    },
                });
            }
        }
        for (held, call_idx) in &f.calls_under_lock {
            let call = &f.calls[*call_idx];
            for callee in graph.resolve(i, call) {
                if trans_waits[callee] && reported.insert((held.clone(), call.line, call.col)) {
                    out.push(WorkspaceDiag {
                        file: f.file,
                        diag: RawDiag {
                            rule: "R10",
                            line: call.line,
                            col: call.col,
                            message: format!(
                                "lock `{held}` held across a call that blocks on a lane ({} -> {}) — drop the guard before waiting/submitting",
                                f.display(),
                                ws.fns[callee].display()
                            ),
                        },
                    });
                }
            }
        }
    }

    // Cycle detection over the edge set (iterative DFS, deterministic
    // node order). Every cycle is reported once, at its lexicographically
    // first witness site.
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
    }
    let mut color: BTreeMap<&str, u8> = BTreeMap::new(); // 0 new, 1 open, 2 done
    let mut reported_cycles: BTreeSet<String> = BTreeSet::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        if color.get(start).copied().unwrap_or(0) != 0 {
            continue;
        }
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        let mut path: Vec<&str> = vec![start];
        color.insert(start, 1);
        while let Some((node, idx)) = stack.last_mut() {
            let node = *node;
            let next = adj.get(node).and_then(|n| n.get(*idx)).copied();
            *idx += 1;
            match next {
                Some(to) => match color.get(to).copied().unwrap_or(0) {
                    0 => {
                        color.insert(to, 1);
                        stack.push((to, 0));
                        path.push(to);
                    }
                    1 => {
                        // Found a cycle: the path from `to` to `node`.
                        let pos = path.iter().position(|&n| n == to).unwrap_or(0);
                        let cycle: Vec<&str> = path[pos..].to_vec();
                        // Canonical rotation for dedup.
                        let min = cycle
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, n)| **n)
                            .map(|(i, _)| i)
                            .unwrap_or(0);
                        let mut canon: Vec<&str> = Vec::with_capacity(cycle.len());
                        for k in 0..cycle.len() {
                            canon.push(cycle[(min + k) % cycle.len()]);
                        }
                        let key = canon.join("->");
                        if reported_cycles.insert(key) {
                            let mut display = canon.clone();
                            display.push(canon[0]);
                            // Witness: the lexicographically first edge of
                            // the cycle.
                            let mut best: Option<&(usize, u32, u32, String)> = None;
                            for k in 0..canon.len() {
                                let e = (
                                    canon[k].to_string(),
                                    canon[(k + 1) % canon.len()].to_string(),
                                );
                                if let Some(w) = edges.get(&e) {
                                    let better = match best {
                                        None => true,
                                        Some(b) => (w.0, w.1, w.2) < (b.0, b.1, b.2),
                                    };
                                    if better {
                                        best = Some(w);
                                    }
                                }
                            }
                            if let Some((file, line, col, via)) = best {
                                out.push(WorkspaceDiag {
                                    file: *file,
                                    diag: RawDiag {
                                        rule: "R10",
                                        line: *line,
                                        col: *col,
                                        message: format!(
                                            "lock-order cycle {} (witnessed in {via}) — all guards must be acquired in one global order",
                                            display.join(" -> ")
                                        ),
                                    },
                                });
                            }
                        }
                    }
                    _ => {}
                },
                None => {
                    color.insert(node, 2);
                    stack.pop();
                    path.pop();
                }
            }
        }
    }
}
