//! R11: the ratcheting baseline.
//!
//! `lint-baseline.json` is a committed snapshot of every finding and
//! every `uni-lint: allow` suppression in the tree. With `--baseline`,
//! findings present in the snapshot are downgraded to warnings (they are
//! known debt, tracked, not a regression) while anything *new* stays
//! denied — and every suppression not in the snapshot becomes a denied
//! R11 diagnostic of its own. The only way to add a suppression is to
//! re-bless the snapshot with `--write-baseline`, which makes the diff
//! reviewable; removing findings or suppressions needs no ceremony, so
//! the counts can only ratchet down silently, never up.
//!
//! Keys deliberately omit line numbers: inserting a line above a known
//! finding must not turn it into a "new" one. A (rule, path, message)
//! triple with a count is stable under unrelated edits and still unique
//! enough to pin real regressions.
//!
//! The parser below is a minimal recursive-descent JSON reader. The lint
//! crate is dependency-free by design (it gates the build everything
//! else depends on), so it cannot pull in serde; the subset of JSON the
//! baseline uses (objects, arrays, strings, unsigned ints) keeps this
//! small.

use crate::{Diagnostic, Report};
use std::collections::BTreeMap;

/// A committed findings snapshot.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// (rule, path, message) -> count
    pub findings: BTreeMap<(String, String, String), u32>,
    /// (rule, path, reason) -> count
    pub allows: BTreeMap<(String, String, String), u32>,
}

impl Baseline {
    /// Snapshots a report: every diagnostic and every used suppression.
    pub fn from_report(report: &Report) -> Self {
        let mut b = Baseline::default();
        for d in &report.diagnostics {
            *b.findings
                .entry((d.rule.clone(), d.path.clone(), d.message.clone()))
                .or_insert(0) += 1;
        }
        for a in &report.allows_used {
            *b.allows
                .entry((a.rule.clone(), a.path.clone(), a.reason.clone()))
                .or_insert(0) += 1;
        }
        b
    }

    /// Applies the baseline to a report: known findings downgrade to
    /// warnings, unknown suppressions become denied R11 diagnostics.
    /// Returns human-readable notes about stale baseline entries (debt
    /// that has been paid off — time to re-bless and shrink the file).
    pub fn rebase(&self, report: &mut Report) -> Vec<String> {
        let mut remaining_findings = self.findings.clone();
        let mut remaining_allows = self.allows.clone();

        for d in &mut report.diagnostics {
            let key = (d.rule.clone(), d.path.clone(), d.message.clone());
            if let Some(n) = remaining_findings.get_mut(&key) {
                if *n > 0 {
                    *n -= 1;
                    d.denied = false;
                }
            }
        }

        let mut new_allow_diags = Vec::new();
        for a in &report.allows_used {
            let key = (a.rule.clone(), a.path.clone(), a.reason.clone());
            let known = remaining_allows.get_mut(&key).is_some_and(|n| {
                if *n > 0 {
                    *n -= 1;
                    true
                } else {
                    false
                }
            });
            if !known {
                new_allow_diags.push(Diagnostic {
                    rule: "R11".to_string(),
                    path: a.path.clone(),
                    line: a.line,
                    col: 1,
                    message: format!(
                        "suppression not in baseline: allow({}, \"{}\") — new suppressions must be reviewed and blessed via --write-baseline",
                        a.rule, a.reason
                    ),
                    denied: true,
                });
            }
        }
        report.diagnostics.extend(new_allow_diags);
        report.diagnostics.sort_by(|a, b| {
            (&a.path, a.line, a.col, &a.rule).cmp(&(&b.path, b.line, b.col, &b.rule))
        });

        let mut notes = Vec::new();
        for ((rule, path, message), n) in &remaining_findings {
            if *n > 0 {
                notes.push(format!(
                    "baseline entry no longer observed ({n}x): {rule} {path}: {message} — re-bless with --write-baseline to ratchet down"
                ));
            }
        }
        for ((rule, path, reason), n) in &remaining_allows {
            if *n > 0 {
                notes.push(format!(
                    "baseline suppression no longer used ({n}x): allow({rule}) in {path} (\"{reason}\") — re-bless with --write-baseline to ratchet down"
                ));
            }
        }
        notes
    }

    /// Deterministic serialization (sorted keys, stable shape).
    pub fn render(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
        let mut first = true;
        for ((rule, path, message), n) in &self.findings {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"path\": {}, \"message\": {}, \"count\": {n}}}",
                crate::json_str(rule),
                crate::json_str(path),
                crate::json_str(message)
            ));
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"allows\": [");
        first = true;
        for ((rule, path, reason), n) in &self.allows {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"path\": {}, \"reason\": {}, \"count\": {n}}}",
                crate::json_str(rule),
                crate::json_str(path),
                crate::json_str(reason)
            ));
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses a baseline file. Errors carry enough context to fix the
    /// file by hand.
    pub fn parse(src: &str) -> Result<Self, String> {
        let value = Json::parse(src)?;
        let obj = value.as_object().ok_or("baseline root must be an object")?;
        let mut b = Baseline::default();
        if let Some(findings) = obj.get("findings") {
            let arr = findings
                .as_array()
                .ok_or("baseline `findings` must be an array")?;
            for entry in arr {
                let e = entry
                    .as_object()
                    .ok_or("baseline finding entries must be objects")?;
                let key = (
                    field_str(e, "rule")?,
                    field_str(e, "path")?,
                    field_str(e, "message")?,
                );
                let count = field_count(e);
                *b.findings.entry(key).or_insert(0) += count;
            }
        }
        if let Some(allows) = obj.get("allows") {
            let arr = allows
                .as_array()
                .ok_or("baseline `allows` must be an array")?;
            for entry in arr {
                let e = entry
                    .as_object()
                    .ok_or("baseline allow entries must be objects")?;
                let key = (
                    field_str(e, "rule")?,
                    field_str(e, "path")?,
                    field_str(e, "reason")?,
                );
                let count = field_count(e);
                *b.allows.entry(key).or_insert(0) += count;
            }
        }
        Ok(b)
    }
}

fn field_str(obj: &BTreeMap<String, Json>, key: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(|v| v.as_str())
        .map(|s| s.to_string())
        .ok_or_else(|| format!("baseline entry missing string field `{key}`"))
}

fn field_count(obj: &BTreeMap<String, Json>) -> u32 {
    obj.get("count")
        .and_then(|v| v.as_u32())
        .unwrap_or(1)
        .max(1)
}

// ---------------------------------------------------------------------------
// Minimal JSON reader
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos} in baseline JSON"));
        }
        Ok(value)
    }

    fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_u32(&self) -> Option<u32> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => {
                Some(*n as u32)
            }
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of baseline JSON".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key at byte {pos} is not a string")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(arr));
            }
            loop {
                arr.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(arr));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            while let Some(&b) = bytes.get(*pos) {
                match b {
                    b'"' => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    b'\\' => {
                        *pos += 1;
                        match bytes.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            Some(b'r') => s.push('\r'),
                            Some(b'b') => s.push('\u{8}'),
                            Some(b'f') => s.push('\u{c}'),
                            Some(b'u') => {
                                let hex = bytes
                                    .get(*pos + 1..*pos + 5)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                                    .and_then(char::from_u32)
                                    .ok_or_else(|| {
                                        format!("bad \\u escape at byte {pos} in baseline JSON")
                                    })?;
                                s.push(hex);
                                *pos += 4;
                            }
                            _ => return Err(format!("bad escape at byte {pos}")),
                        }
                        *pos += 1;
                    }
                    _ => {
                        // Consume one UTF-8 scalar (multi-byte safe).
                        let start = *pos;
                        *pos += 1;
                        while *pos < bytes.len() && bytes[*pos] & 0xC0 == 0x80 {
                            *pos += 1;
                        }
                        s.push_str(
                            std::str::from_utf8(&bytes[start..*pos])
                                .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
                        );
                    }
                }
            }
            Err("unterminated string in baseline JSON".to_string())
        }
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&bytes[start..*pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad token at byte {start} in baseline JSON"))
        }
    }
}
