//! The R1–R7 rule engine: a single linear pass over the stripped token
//! stream, tracking `impl`/`fn` nesting so context-scoped rules (policy
//! purity, hot-loop allocation) fire only where the contract applies.
//!
//! Path scoping uses workspace-relative paths with `/` separators; the
//! caller normalizes. Every rule is deny-by-default — suppression goes
//! through `// uni-lint: allow(RULE, reason)` handled in [`crate`], not
//! here.

use crate::lexer::{Directive, Lexed, Tok};

/// One rule's identity card (the table README renders).
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    pub id: &'static str,
    pub name: &'static str,
    pub summary: &'static str,
}

pub const RULES: [Rule; 11] = [
    Rule {
        id: "R1",
        name: "no-nested-vec",
        summary: "Vec<Vec<..>> in the hot crates (geometry/scene/renderers) — use FlatMat or a flat buffer + offsets",
    },
    Rule {
        id: "R2",
        name: "no-raw-threads",
        summary: "std::thread::{spawn,scope,Builder} outside uni-parallel — band math must stay thread-count-invariant",
    },
    Rule {
        id: "R3",
        name: "total-cmp-floats",
        summary: "partial_cmp on float keys — use f32::total_cmp / f64::total_cmp for a total, deterministic order",
    },
    Rule {
        id: "R4",
        name: "no-wall-clock-in-policy",
        summary: "Instant/SystemTime in schedulers, SchedulePolicy impls, or microops accounting — schedule-order facts only",
    },
    Rule {
        id: "R5",
        name: "no-unordered-iteration",
        summary: "HashMap/HashSet in scheduling/accounting/delivery paths — use BTreeMap/BTreeSet or an explicit sort",
    },
    Rule {
        id: "R6",
        name: "policy-purity",
        summary: "interior mutability, statics, or env reads inside a SchedulePolicy impl — policies are pure functions",
    },
    Rule {
        id: "R7",
        name: "no-alloc-in-hot-loop",
        summary: "allocation (Vec::new/vec!/to_vec/collect/Box::new/..) inside a `// uni-lint: hot` function",
    },
    Rule {
        id: "R8",
        name: "transitive-hot-alloc",
        summary: "allocation anywhere in the call tree under a `// uni-lint: hot` fn — the diagnostic carries the call chain",
    },
    Rule {
        id: "R9",
        name: "determinism-taint",
        summary: "wall clocks / unordered maps in anything reachable from a SchedulePolicy impl or a RenderServer method",
    },
    Rule {
        id: "R10",
        name: "lock-order",
        summary: "Mutex acquisition-order cycles, or a guard held across Ticket::wait / lane submission",
    },
    Rule {
        id: "R11",
        name: "baseline-ratchet",
        summary: "finding or suppression not in the committed lint-baseline.json — debt can only ratchet down",
    },
];

pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id.eq_ignore_ascii_case(id))
}

/// A rule hit before allow-directive filtering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawDiag {
    pub rule: &'static str,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScopeKind {
    Block,
    Impl { policy: bool },
    Fn { hot: bool },
}

/// Which rule families a file's path puts it in scope for.
#[derive(Debug, Clone, Copy)]
struct PathScope {
    /// R1: crates/{geometry,scene,renderers}/src.
    hot_crate: bool,
    /// R2 exemption: uni-parallel owns the raw threads.
    parallel_crate: bool,
    /// R4: any sched.rs, or microops (accounting).
    scheduling: bool,
    /// R5: engine + microops (scheduling/accounting/delivery).
    ordered_iteration: bool,
}

impl PathScope {
    fn of(path: &str) -> Self {
        let in_dir = |p: &str| path.starts_with(p);
        Self {
            hot_crate: in_dir("crates/geometry/src")
                || in_dir("crates/scene/src")
                || in_dir("crates/renderers/src"),
            parallel_crate: in_dir("crates/parallel/"),
            scheduling: in_scheduling_scope(path),
            ordered_iteration: in_ordered_scope(path),
        }
    }
}

/// R4's path scope: any sched.rs, or microops (accounting). R9 skips
/// sites here — the intra rule already reports them.
pub(crate) fn in_scheduling_scope(path: &str) -> bool {
    let file = path.rsplit('/').next().unwrap_or(path);
    file == "sched.rs" || path.starts_with("crates/microops/src")
}

/// R5's path scope: engine + microops (scheduling/accounting/delivery).
/// R9 skips sites here — the intra rule already reports them.
pub(crate) fn in_ordered_scope(path: &str) -> bool {
    path.starts_with("crates/engine/src") || path.starts_with("crates/microops/src")
}

/// Whether the token at `i` is an allocation site under the R7 pattern.
/// Shared with R8 so "alloc" means the same thing inside a hot fn and
/// two calls below one.
pub(crate) fn alloc_token(toks: &[Tok], i: usize) -> bool {
    let text = |j: usize| toks.get(j).map(|t| t.text.as_str()).unwrap_or("");
    match text(i) {
        "Vec" | "Box" | "String" => text(i + 1) == "::" && text(i + 2) == "new",
        "vec" | "format" => text(i + 1) == "!",
        "to_vec" | "collect" | "to_string" | "with_capacity" => true,
        _ => false,
    }
}

/// Idents R4 (and R9, transitively) treat as wall-clock/date sources.
pub(crate) const WALL_CLOCK: [&str; 4] = ["Instant", "SystemTime", "UNIX_EPOCH", "DateTime"];
/// Interior-mutability / ambient-state idents R6 denies in policies.
const IMPURE: [&str; 8] = [
    "Cell", "RefCell", "Mutex", "RwLock", "OnceLock", "OnceCell", "LazyLock", "LazyCell",
];

pub fn check(path: &str, lexed: &Lexed) -> Vec<RawDiag> {
    let scope = PathScope::of(path);
    let toks = &lexed.tokens;
    let mut hot_lines: Vec<u32> = lexed
        .directives
        .iter()
        .filter_map(|d| match d {
            Directive::Hot { line } => Some(*line),
            _ => None,
        })
        .collect();
    hot_lines.reverse(); // pop() yields them in source order

    let mut diags = Vec::new();
    let mut scopes: Vec<ScopeKind> = Vec::new();
    let mut pending_impl: Option<bool> = None;
    let mut pending_fn: Option<bool> = None;
    // Bracket/paren depth so `;` inside `[u8; 4]` or default args does
    // not cancel a pending fn body.
    let mut grouping_depth = 0i64;

    let in_policy = |scopes: &[ScopeKind]| {
        scopes
            .iter()
            .any(|s| matches!(s, ScopeKind::Impl { policy: true }))
    };
    let in_hot = |scopes: &[ScopeKind]| {
        scopes
            .iter()
            .any(|s| matches!(s, ScopeKind::Fn { hot: true }))
    };

    let text = |i: usize| toks.get(i).map(|t| t.text.as_str()).unwrap_or("");

    for i in 0..toks.len() {
        let tok = &toks[i];
        let t = tok.text.as_str();
        match t {
            "(" | "[" => grouping_depth += 1,
            ")" | "]" => grouping_depth -= 1,
            "{" => {
                let kind = if let Some(hot) = pending_fn.take() {
                    ScopeKind::Fn { hot }
                } else if let Some(policy) = pending_impl.take() {
                    ScopeKind::Impl { policy }
                } else {
                    ScopeKind::Block
                };
                scopes.push(kind);
            }
            "}" => {
                scopes.pop();
            }
            ";" if grouping_depth == 0 => {
                // A bodyless `fn` declaration (trait method signature).
                pending_fn = None;
            }
            "impl" if !type_position(i, toks) => {
                // Scan the impl header (up to its `{`) for the policy
                // trait.
                let mut policy = false;
                for j in i + 1..toks.len() {
                    match text(j) {
                        "{" | ";" => break,
                        "SchedulePolicy" => policy = true,
                        _ => {}
                    }
                }
                pending_impl = Some(policy);
            }
            // `fn(` is a function-pointer type, not an item.
            "fn" if text(i + 1) != "(" => {
                let mut hot = false;
                while hot_lines.last().is_some_and(|&l| l <= tok.line) {
                    hot_lines.pop();
                    hot = true;
                }
                pending_fn = Some(hot);
            }
            _ => {}
        }

        // ---- pattern rules ----

        if scope.hot_crate && t == "Vec" && text(i + 1) == "<" && text(i + 2) == "Vec" {
            diags.push(diag(
                "R1",
                tok,
                "nested Vec<Vec<..>> in a hot crate: use uni_geometry::FlatMat or a flat buffer with segment offsets",
            ));
        }

        if !scope.parallel_crate
            && t == "thread"
            && text(i + 1) == "::"
            && matches!(text(i + 2), "spawn" | "scope" | "Builder")
        {
            diags.push(diag(
                "R2",
                tok,
                "raw std::thread use outside uni-parallel: go through par_bands/par_indices/LanePool so thread-count invariance holds",
            ));
        }

        if t == "partial_cmp" {
            diags.push(diag(
                "R3",
                tok,
                "partial_cmp orders floats partially (NaN breaks determinism): use f32::total_cmp / f64::total_cmp",
            ));
        }

        if (scope.scheduling || in_policy(&scopes)) && WALL_CLOCK.contains(&t) {
            diags.push(diag(
                "R4",
                tok,
                "wall-clock source in scheduling/accounting code: deadlines and metrics are schedule-order facts, never lane-timing facts",
            ));
        }

        if scope.ordered_iteration && (t == "HashMap" || t == "HashSet") {
            diags.push(diag(
                "R5",
                tok,
                "unordered container in a scheduling/accounting/delivery path: iteration order leaks into served state — use BTreeMap/BTreeSet or sort explicitly",
            ));
        }

        if in_policy(&scopes) {
            let impure = IMPURE.contains(&t)
                || t.starts_with("Atomic")
                || t == "thread_local"
                || (t == "static" && text(i + 1) == "mut")
                || (t == "env" && text(i + 1) == "::" && text(i + 2).starts_with("var"));
            if impure {
                diags.push(diag(
                    "R6",
                    tok,
                    "impure state inside a SchedulePolicy impl: policies must be pure functions of (PolicyContext, &[SessionView])",
                ));
            }
        }

        if in_hot(&scopes) && alloc_token(toks, i) {
            diags.push(diag(
                "R7",
                tok,
                "allocation inside a `// uni-lint: hot` function: hot loops borrow pooled buffers and scratch arenas, steady-state frames allocate nothing",
            ));
        }
    }
    diags
}

fn diag(rule: &'static str, tok: &Tok, message: &str) -> RawDiag {
    RawDiag {
        rule,
        line: tok.line,
        col: tok.col,
        message: format!("{message} (found `{}`)", tok.text),
    }
}

/// Whether the `impl` at `i` is type-position (`-> impl Trait`,
/// `x: impl Trait`) rather than an item.
fn type_position(i: usize, toks: &[Tok]) -> bool {
    let Some(prev) = i.checked_sub(1).and_then(|p| toks.get(p)) else {
        return false;
    };
    matches!(
        prev.text.as_str(),
        "-" | ">" | ":" | "(" | "," | "<" | "+" | "=" | "&" | "dyn"
    ) || prev.text == "->"
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ids(path: &str, src: &str) -> Vec<&'static str> {
        check(path, &lex(src)).into_iter().map(|d| d.rule).collect()
    }

    #[test]
    fn r1_scoped_to_hot_crates() {
        let src = "struct S { x: Vec<Vec<f32>> }";
        assert_eq!(ids("crates/scene/src/nn.rs", src), ["R1"]);
        assert_eq!(ids("crates/bench/src/lib.rs", src), Vec::<&str>::new());
    }

    #[test]
    fn r2_exempts_uni_parallel() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        assert_eq!(ids("crates/core/src/sched.rs", src), ["R2"]);
        assert_eq!(ids("crates/parallel/src/lib.rs", src), Vec::<&str>::new());
    }

    #[test]
    fn r4_fires_in_policy_impls_anywhere() {
        let src = "impl SchedulePolicy for P { fn pick(&self) { let t = Instant::now(); } }";
        assert_eq!(ids("crates/other/src/lib.rs", src), ["R4"]);
        // Outside any scheduling scope, Instant is fine.
        assert_eq!(
            ids(
                "crates/other/src/lib.rs",
                "fn f() { let t = Instant::now(); }"
            ),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn r6_scope_ends_with_the_impl_block() {
        let src =
            "impl SchedulePolicy for P { fn pick(&self) {} }\nfn free() { let m = Mutex::new(0); }";
        assert_eq!(ids("crates/x/src/lib.rs", src), Vec::<&str>::new());
        let src = "impl SchedulePolicy for P { fn pick(&self) { let m = Mutex::new(0); } }";
        assert_eq!(ids("crates/x/src/lib.rs", src), ["R6"]);
    }

    #[test]
    fn r7_requires_the_hot_marker() {
        let cold = "fn f() { let v = Vec::new(); }";
        assert_eq!(ids("crates/x/src/lib.rs", cold), Vec::<&str>::new());
        let hot = "// uni-lint: hot\nfn f() { let v = Vec::new(); }";
        assert_eq!(ids("crates/x/src/lib.rs", hot), ["R7"]);
        // Closures inside a hot fn inherit the context.
        let closure = "// uni-lint: hot\nfn f() { g(|| { h.collect() }); }";
        assert_eq!(ids("crates/x/src/lib.rs", closure), ["R7"]);
        // The next fn after the marked one is cold again.
        let next = "// uni-lint: hot\nfn f() {}\nfn g() { let v = vec![1]; }";
        assert_eq!(ids("crates/x/src/lib.rs", next), Vec::<&str>::new());
    }

    #[test]
    fn return_position_impl_is_not_an_impl_block() {
        let src = "fn f() -> impl Iterator<Item = u32> { let m = Mutex::new(0); (0..3) }";
        assert_eq!(ids("crates/x/src/lib.rs", src), Vec::<&str>::new());
    }
}
