//! The serving determinism contract: every frame a [`RenderServer`]
//! delivers is **bit-identical** to the same frame rendered by a
//! standalone [`RenderSession`], for any mix of sessions (pipelines and
//! resolutions varying freely) and for any thread count.
//!
//! Scheduler order is part of the public contract (strict round-robin
//! over session ids), so the summaries must be identical across thread
//! counts too — worker lanes may only overlap execution, never change
//! results.
//!
//! This file holds a single `#[test]` because it mutates the process-wide
//! `UNI_RENDER_THREADS` variable; a sibling test running concurrently in
//! the same binary would race on it.

use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use uni_render::prelude::*;

mod common;
use common::fnv1a_image as frame_hash;

fn scene() -> Arc<BakedScene> {
    static SCENE: OnceLock<Arc<BakedScene>> = OnceLock::new();
    Arc::clone(SCENE.get_or_init(|| {
        Arc::new(
            SceneSpec::demo("serve-determinism", 77)
                .with_detail(0.03)
                .bake(),
        )
    }))
}

/// One generated session: pipeline choice, frame count, resolution.
#[derive(Debug, Clone, Copy)]
struct Mix {
    pipeline: usize,
    frames: usize,
    resolution: (u32, u32),
}

const RESOLUTIONS: [(u32, u32); 4] = [(16, 12), (24, 16), (32, 24), (40, 28)];

fn renderer(index: usize) -> Box<dyn Renderer + Send> {
    match index {
        0 => Box::new(MeshPipeline::default()),
        1 => Box::new(MlpPipeline::default()),
        2 => Box::new(LowRankPipeline::default()),
        3 => Box::new(HashGridPipeline::default()),
        4 => Box::new(GaussianPipeline::default()),
        _ => Box::new(MixRtPipeline::default()),
    }
}

/// Each session orbits from its own start angle so the mixes exercise
/// genuinely different cameras, deterministically per session id.
fn path_for(session: usize, mix: Mix) -> CameraPath {
    let (w, h) = mix.resolution;
    let orbit = scene().spec().orbit(w, h);
    CameraPath::orbit_arc(orbit, 0.7 * session as f32, 2.0, mix.frames)
}

/// Renders every session standalone: per-session, per-frame hashes.
fn standalone_hashes(mixes: &[Mix]) -> Vec<Vec<u64>> {
    mixes
        .iter()
        .enumerate()
        .map(|(id, &mix)| {
            let mut session =
                RenderSession::new(scene(), renderer(mix.pipeline), path_for(id, mix));
            let mut hashes = Vec::with_capacity(mix.frames);
            while let Some(frame) = session.next_frame() {
                hashes.push(frame_hash(&frame.image));
                session.recycle(frame.image);
            }
            hashes
        })
        .collect()
}

/// Serves every session through one server: hashes indexed the same way,
/// plus the end-of-run summary.
fn served_hashes(mixes: &[Mix], lanes: usize) -> (Vec<Vec<u64>>, ServerSummary) {
    let mut server = RenderServer::new(scene())
        .with_accelerator(Accelerator::new(AcceleratorConfig::paper()))
        .with_lanes(lanes);
    for (id, &mix) in mixes.iter().enumerate() {
        server.add_session(SessionRequest::new(
            renderer(mix.pipeline),
            path_for(id, mix),
        ));
    }
    let mut hashes: Vec<Vec<u64>> = mixes.iter().map(|m| Vec::with_capacity(m.frames)).collect();
    while let Some(frame) = server.next_frame() {
        assert_eq!(
            hashes[frame.session].len(),
            frame.report.index,
            "frames of one session arrive in path order"
        );
        hashes[frame.session].push(frame_hash(&frame.report.image));
        server.recycle(frame.session, frame.report.image);
    }
    (hashes, server.summary())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]
    #[test]
    fn served_frames_are_bit_identical_to_standalone_sessions(
        raw in proptest::collection::vec((0usize..6, 1usize..3, 0usize..4), 1..9),
    ) {
        let mixes: Vec<Mix> = raw
            .iter()
            .map(|&(pipeline, frames, res)| Mix {
                pipeline,
                frames,
                resolution: RESOLUTIONS[res],
            })
            .collect();

        let mut reference: Option<(Vec<Vec<u64>>, ServerSummary)> = None;
        for threads in ["1", "4"] {
            std::env::set_var("UNI_RENDER_THREADS", threads);
            let solo = standalone_hashes(&mixes);
            let (served, summary) = served_hashes(&mixes, 4);
            prop_assert_eq!(&served, &solo);
            prop_assert!(summary.is_consistent());
            prop_assert_eq!(
                summary.scheduled_frames,
                mixes.iter().map(|m| m.frames).sum::<usize>()
            );
            // Thread count must change nothing: images, schedule, accounting.
            if let Some((ref_hashes, ref_summary)) = &reference {
                prop_assert_eq!(ref_hashes, &served);
                prop_assert_eq!(ref_summary, &summary);
            } else {
                reference = Some((served, summary));
            }
        }
        std::env::remove_var("UNI_RENDER_THREADS");
    }
}
