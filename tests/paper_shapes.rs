//! Shape tests: the qualitative results of the paper's evaluation section,
//! asserted end to end on a small Unbounded-360-like scene. These encode
//! the *orderings and ratios* the reproduction must preserve (absolute
//! numbers are recorded in EXPERIMENTS.md).

use std::sync::OnceLock;
use uni_render::baselines::{instant3d, metavrain, orin_nx, rt_nerf, xavier_nx, Device};
use uni_render::prelude::*;
use uni_render::renderers::Renderer;
use uni_render::scene::unbounded360;

struct Fixture {
    scene: BakedScene,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let entry = unbounded360(0.04).remove(2); // garden
        Fixture {
            scene: entry.spec.bake(),
        }
    })
}

fn trace_of(renderer: &dyn Renderer) -> Trace {
    let f = fixture();
    let camera = f.scene.spec().orbit(1280, 720).camera_at(0.9);
    renderer.trace(&f.scene, &camera)
}

fn ours(trace: &Trace) -> SimReport {
    Accelerator::new(AcceleratorConfig::paper()).simulate(trace)
}

/// Sec. VII-B: "our proposed accelerator achieves a speedup of 3× ... over
/// RT-NeRF on the low-rank-decomposed-grid rendering pipeline".
#[test]
fn beats_rt_nerf_on_low_rank_by_about_3x() {
    let trace = trace_of(&LowRankPipeline::default());
    let ratio = ours(&trace).fps() / rt_nerf().execute(&trace).expect("home").fps();
    assert!(
        (1.8..=4.5).contains(&ratio),
        "~3x over RT-NeRF, got {ratio:.2}x"
    );
}

/// Sec. VII-B: "a speedup of 6× ... over Instant-3D on the hash-grid
/// rendering pipeline".
#[test]
fn beats_instant3d_on_hash_grid_by_about_6x() {
    let trace = trace_of(&HashGridPipeline::default());
    let ratio = ours(&trace).fps() / instant3d().execute(&trace).expect("home").fps();
    assert!(
        (3.5..=9.0).contains(&ratio),
        "~6x over Instant-3D, got {ratio:.2}x"
    );
}

/// Sec. VII-B: "our proposed accelerator only achieves ... 10% FPS [of
/// MetaVRain] with 5× more power" on the MLP pipeline.
#[test]
fn loses_to_metavrain_on_pure_mlp() {
    let trace = trace_of(&MlpPipeline::default());
    let our_report = ours(&trace);
    let mv = metavrain().execute(&trace).expect("home");
    assert!(
        our_report.fps() < mv.fps(),
        "dedicated MLP chip wins its home turf: {} vs {}",
        our_report.fps(),
        mv.fps()
    );
    assert!(
        mv.frames_per_joule() > our_report.frames_per_joule(),
        "MetaVRain is the more energy-efficient MLP engine"
    );
}

/// Sec. VIII-A: "we achieve [a] 12× [speedup over Xavier NX]" on 3DGS.
#[test]
fn about_12x_over_xavier_on_gaussians() {
    let trace = trace_of(&GaussianPipeline::default());
    let ratio = ours(&trace).fps() / xavier_nx().execute(&trace).expect("runs").fps();
    assert!(
        (7.0..=20.0).contains(&ratio),
        "~12x over Xavier, got {ratio:.2}x"
    );
}

/// Sec. VII-B: mesh is the one pipeline where strong commercial devices
/// stay competitive (0.9× Orin), yet Uni-Render wins on energy (4×).
#[test]
fn mesh_is_competitive_not_dominant_but_wins_energy() {
    let trace = trace_of(&MeshPipeline::default());
    let our_report = ours(&trace);
    let orin = orin_nx().execute(&trace).expect("runs");
    let speed_ratio = our_report.fps() / orin.fps();
    assert!(
        (0.5..=2.0).contains(&speed_ratio),
        "mesh FPS is a close race: {speed_ratio:.2}x"
    );
    let energy_ratio = our_report.frames_per_joule() / orin.frames_per_joule();
    assert!(
        energy_ratio > 2.0,
        "energy efficiency still favors ours: {energy_ratio:.2}x"
    );
}

/// Sec. I headline: "up to 119× speedups over state-of-the-art neural
/// rendering hardware" — the maximum commercial-device speedup is huge and
/// happens on the MLP pipeline.
#[test]
fn maximum_commercial_speedup_is_two_orders_of_magnitude() {
    let trace = trace_of(&MlpPipeline::default());
    let ratio = ours(&trace).fps() / xavier_nx().execute(&trace).expect("runs").fps();
    assert!(
        (60.0..=500.0).contains(&ratio),
        "MLP speedup is O(100x): got {ratio:.0}x"
    );
}

/// Tab. V structure: balanced scaling beats unbalanced scaling.
#[test]
fn balanced_pe_sram_scaling_is_optimal() {
    let trace = trace_of(&HashGridPipeline::default());
    let time = |pe, sram| {
        Accelerator::new(AcceleratorConfig::paper().scaled(pe, sram))
            .simulate(&trace)
            .seconds
    };
    let base = time(1, 1);
    let pe_only = base / time(4, 1);
    let sram_only = base / time(1, 4);
    let balanced = base / time(4, 4);
    assert!(sram_only < 1.1, "SRAM alone buys ~nothing: {sram_only:.2}x");
    assert!(
        pe_only < balanced,
        "PE-only saturates: {pe_only:.2}x < {balanced:.2}x"
    );
    assert!(balanced > 2.0, "balanced 4x/4x scales well: {balanced:.2}x");
}

/// Fig. 15: area totals and splits match the paper's synthesis numbers.
#[test]
fn area_model_matches_paper() {
    let die = uni_render::accel::area(&AcceleratorConfig::paper());
    assert!((die.total_mm2() - 14.96).abs() < 0.05);
    let (logic, array, global) = die.shares();
    assert!((logic - 54.0).abs() < 1.5);
    assert!((array - 31.0).abs() < 1.5);
    assert!((global - 15.0).abs() < 1.5);
}

/// The paper's power envelope: around 5 W, typical for edge devices,
/// across all five typical pipelines.
#[test]
fn power_stays_in_the_edge_envelope() {
    for renderer in uni_render::renderers::typical_renderers() {
        let trace = trace_of(renderer.as_ref());
        let report = ours(&trace);
        assert!(
            report.power_w() < 12.0,
            "{}: {:.2} W stays edge-scale",
            renderer.pipeline(),
            report.power_w()
        );
    }
}
