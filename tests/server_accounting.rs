//! Accounting contract of the multi-session server: aggregate
//! [`ServerSummary`] reconfiguration counts equal the sum implied by the
//! interleaved round-robin schedule, per-session counters sum to the
//! aggregates, and each session's framebuffer pool allocates exactly
//! once for its whole stream.

use std::sync::{Arc, OnceLock};
use uni_render::microops::{BoundaryMeter, SwitchCostModel};
use uni_render::prelude::*;

fn scene() -> Arc<BakedScene> {
    static SCENE: OnceLock<Arc<BakedScene>> = OnceLock::new();
    Arc::clone(SCENE.get_or_init(|| {
        Arc::new(
            SceneSpec::demo("serve-accounting", 31)
                .with_detail(0.03)
                .bake(),
        )
    }))
}

fn orbit_path(session: usize, frames: usize, w: u32, h: u32) -> CameraPath {
    let orbit = scene().spec().orbit(w, h);
    CameraPath::orbit_arc(orbit, 0.9 * session as f32, 2.4, frames)
}

fn server_with(
    sessions: Vec<(Box<dyn Renderer + Send>, CameraPath)>,
    lanes: usize,
) -> RenderServer {
    let mut server = RenderServer::new(scene())
        .with_accelerator(Accelerator::new(AcceleratorConfig::paper()))
        .with_lanes(lanes);
    for (renderer, path) in sessions {
        server.add_session(SessionRequest::new(renderer, path));
    }
    server
}

/// Replays the server's round-robin schedule by hand over the same frame
/// traces and returns the boundary switches/avoidances it implies.
fn expected_boundaries(sessions: &[(Box<dyn Renderer + Send>, CameraPath)]) -> (u64, u64) {
    let scene = scene();
    let mut cursors = vec![0usize; sessions.len()];
    let mut meter = BoundaryMeter::new();
    loop {
        let mut advanced = false;
        for (sid, (renderer, path)) in sessions.iter().enumerate() {
            if cursors[sid] < path.len() {
                let trace = renderer.trace(&scene, &path.camera(cursors[sid]));
                meter.observe(trace.first_op(), trace.last_op());
                cursors[sid] += 1;
                advanced = true;
            }
        }
        if !advanced {
            break;
        }
    }
    (meter.switches(), meter.avoided())
}

/// Two sessions alternating *different* pipelines: every scheduled-frame
/// boundary where the outgoing and incoming micro-op families differ
/// pays a reconfiguration. Gaussian frames open in geometric processing
/// and hash-grid frames in combined grid indexing, while both close in
/// GEMM — so alternating them reconfigures on every frame after the
/// first: the cross-renderer switching cost the paper models.
#[test]
fn alternating_pipelines_reconfigure_every_scheduled_frame() {
    let make = || -> Vec<(Box<dyn Renderer + Send>, CameraPath)> {
        vec![
            (
                Box::new(GaussianPipeline::default()),
                orbit_path(0, 3, 24, 16),
            ),
            (
                Box::new(HashGridPipeline::default()),
                orbit_path(1, 3, 24, 16),
            ),
        ]
    };

    // Precondition: the two pipelines genuinely start/end in different
    // families (otherwise this test would assert nothing).
    let gauss_trace =
        GaussianPipeline::default().trace(&scene(), &orbit_path(0, 3, 24, 16).camera(0));
    let hash_trace =
        HashGridPipeline::default().trace(&scene(), &orbit_path(1, 3, 24, 16).camera(0));
    assert_ne!(gauss_trace.last_op(), hash_trace.first_op());
    assert_ne!(hash_trace.last_op(), gauss_trace.first_op());

    let (expected_switches, expected_avoided) = expected_boundaries(&make());
    let summary = server_with(make(), 2).run();

    assert_eq!(summary.scheduled_frames, 6);
    assert_eq!(summary.boundary_reconfigurations, expected_switches);
    assert_eq!(summary.boundary_switches_avoided, expected_avoided);
    // Alternating mismatched families: every boundary is a switch.
    assert_eq!(summary.boundary_reconfigurations, 5);
    assert_eq!(summary.boundary_switches_avoided, 0);
}

/// Sessions running the *same* pipeline only pay the boundary switches a
/// single homogeneous stream would: interleaving them adds nothing.
#[test]
fn same_pipeline_sessions_pay_only_homogeneous_boundaries() {
    let make = || -> Vec<(Box<dyn Renderer + Send>, CameraPath)> {
        vec![
            (
                Box::new(HashGridPipeline::default()),
                orbit_path(0, 2, 24, 16),
            ),
            (
                Box::new(HashGridPipeline::default()),
                orbit_path(1, 2, 20, 14),
            ),
            (
                Box::new(HashGridPipeline::default()),
                orbit_path(2, 2, 16, 12),
            ),
        ]
    };
    let (expected_switches, expected_avoided) = expected_boundaries(&make());
    let summary = server_with(make(), 2).run();
    assert_eq!(summary.scheduled_frames, 6);
    assert_eq!(summary.boundary_reconfigurations, expected_switches);
    assert_eq!(summary.boundary_switches_avoided, expected_avoided);

    // A homogeneous mix pays exactly what one merged stream of the same
    // pipeline pays per boundary: frame traces share their first/last
    // families, so either every boundary switches or none does.
    let single = HashGridPipeline::default().trace(&scene(), &orbit_path(0, 2, 24, 16).camera(0));
    if single.first_op() == single.last_op() {
        assert_eq!(summary.boundary_reconfigurations, 0);
        assert_eq!(summary.boundary_switches_avoided, 5);
    } else {
        assert_eq!(summary.boundary_reconfigurations, 5);
        assert_eq!(summary.boundary_switches_avoided, 0);
    }
}

/// Regression for the pinned accounting mixes under *both* metering
/// semantics, and for the latent history bug: the pipeline-aware meter
/// must record the ordered pipeline pair of **every** real boundary —
/// amortized same-renderer boundaries included — because switch-cost
/// estimation consumes both outcomes. (Before this, `observe_for`
/// recorded the pipeline memory and nothing ever consulted it.)
#[test]
fn pipeline_aware_replay_agrees_and_records_every_boundary_pair() {
    let scene = scene();
    let replay = |sessions: &[(Box<dyn Renderer + Send>, CameraPath)]| {
        let mut agnostic = BoundaryMeter::new();
        let mut aware = BoundaryMeter::new();
        let mut model = SwitchCostModel::seeded(1.0);
        let mut events = Vec::new();
        let mut cursors = vec![0usize; sessions.len()];
        loop {
            let mut advanced = false;
            for (sid, (renderer, path)) in sessions.iter().enumerate() {
                if cursors[sid] < path.len() {
                    let trace = renderer.trace(&scene, &path.camera(cursors[sid]));
                    agnostic.observe(trace.first_op(), trace.last_op());
                    aware.observe_for(renderer.pipeline(), trace.first_op(), trace.last_op());
                    if let Some(event) = aware.last_boundary() {
                        model.observe(event.from, event.to, if event.switched { 1.0 } else { 0.0 });
                        events.push(event);
                    }
                    cursors[sid] += 1;
                    advanced = true;
                }
            }
            if !advanced {
                break;
            }
        }
        (agnostic, aware, model, events)
    };

    // Pinned mix 1: three same-pipeline sessions. The two semantics
    // agree on the counts, and every boundary — paid or amortized —
    // carries its (hashgrid, hashgrid) pair into the history.
    let homogeneous: Vec<(Box<dyn Renderer + Send>, CameraPath)> = (0..3)
        .map(|s| {
            (
                Box::new(HashGridPipeline::default()) as Box<dyn Renderer + Send>,
                orbit_path(s, 2, 24, 16),
            )
        })
        .collect();
    let (agnostic, aware, model, events) = replay(&homogeneous);
    assert_eq!(agnostic.switches(), aware.switches());
    assert_eq!(agnostic.avoided(), aware.avoided());
    assert_eq!(events.len(), 5, "every boundary after the first records");
    for event in &events {
        assert_eq!(event.from, Pipeline::HashGrid);
        assert_eq!(event.to, Pipeline::HashGrid);
    }
    // The cost model learned the diagonal from history: free if the
    // boundaries amortized, one unit if they all paid.
    let learned = model.estimate(Pipeline::HashGrid, Pipeline::HashGrid);
    if aware.switches() == 0 {
        assert_eq!(learned, 0.0, "amortized history teaches a free diagonal");
    } else {
        assert!(learned > 0.0, "paying history teaches a costly diagonal");
    }
    assert_eq!(
        model.observations(Pipeline::HashGrid, Pipeline::HashGrid),
        5
    );

    // Pinned mix 2: alternating gaussian/hashgrid. Both semantics agree
    // (every boundary crosses families) and the history alternates the
    // two ordered pairs, all switched.
    let alternating: Vec<(Box<dyn Renderer + Send>, CameraPath)> = vec![
        (
            Box::new(GaussianPipeline::default()),
            orbit_path(0, 3, 24, 16),
        ),
        (
            Box::new(HashGridPipeline::default()),
            orbit_path(1, 3, 24, 16),
        ),
    ];
    let (agnostic, aware, model, events) = replay(&alternating);
    assert_eq!(agnostic.switches(), aware.switches());
    assert_eq!(agnostic.avoided(), aware.avoided());
    assert_eq!(events.len(), 5);
    for (i, event) in events.iter().enumerate() {
        assert!(event.switched, "alternating mismatched families all pay");
        let (from, to) = if i % 2 == 0 {
            (Pipeline::Gaussian3d, Pipeline::HashGrid)
        } else {
            (Pipeline::HashGrid, Pipeline::Gaussian3d)
        };
        assert_eq!((event.from, event.to), (from, to));
    }
    assert!(model.estimate(Pipeline::Gaussian3d, Pipeline::HashGrid) > 0.0);
    assert!(model.estimate(Pipeline::HashGrid, Pipeline::Gaussian3d) > 0.0);
}

/// Aggregate counters are the sums of the per-session ones, and the
/// in-frame reconfigurations equal the sum of every delivered frame's
/// simulated count.
#[test]
fn aggregates_equal_sums_over_the_interleaved_schedule() {
    let mut server = server_with(
        vec![
            (Box::new(MeshPipeline::default()), orbit_path(0, 3, 24, 16)),
            (Box::new(MlpPipeline::default()), orbit_path(1, 2, 16, 12)),
            (
                Box::new(GaussianPipeline::default()),
                orbit_path(2, 3, 20, 14),
            ),
        ],
        2,
    );
    let mut in_frame = 0u64;
    let mut boundary = 0u64;
    let mut sim_cycles = 0u64;
    while let Some(frame) = server.next_frame() {
        let sim = frame.report.sim.as_ref().expect("server simulates");
        in_frame += sim.reconfigurations;
        sim_cycles += sim.cycles;
        if frame.report.boundary_reconfiguration {
            boundary += 1;
        }
        server.recycle(frame.session, frame.report.image);
    }
    let summary = server.summary();
    assert!(summary.is_consistent(), "aggregates must sum per-session");
    assert_eq!(summary.in_frame_reconfigurations, in_frame);
    assert_eq!(summary.boundary_reconfigurations, boundary);
    assert_eq!(
        summary.total_cycles,
        sim_cycles + boundary * AcceleratorConfig::paper().reconfig_cycles,
        "schedule cycles = per-frame simulation + charged boundary switches"
    );
    assert_eq!(summary.total_reconfigurations(), in_frame + boundary);
}

/// Every session's pool performs exactly one framebuffer allocation for
/// its whole stream, independent of the mix's resolutions.
#[test]
fn per_session_framebuffer_allocations_stay_at_one() {
    let summary = server_with(
        vec![
            (Box::new(MeshPipeline::default()), orbit_path(0, 4, 40, 28)),
            (Box::new(MlpPipeline::default()), orbit_path(1, 4, 16, 12)),
            (
                Box::new(HashGridPipeline::default()),
                orbit_path(2, 4, 32, 24),
            ),
            (
                Box::new(GaussianPipeline::default()),
                orbit_path(3, 4, 24, 16),
            ),
        ],
        3,
    )
    .run();
    assert_eq!(summary.scheduled_frames, 16);
    for stats in &summary.per_session {
        assert_eq!(
            stats.framebuffer_allocations, 1,
            "session {}: one allocation for a {}-frame stream",
            stats.session, stats.frames
        );
        assert_eq!(stats.frames, 4);
    }
}
