//! The scheduler-policy contract of [`RenderServer`]:
//!
//! - every built-in policy's served-frame stream is a **permutation** of
//!   the round-robin stream with **bit-identical** frames (each session's
//!   frames arrive complete, in path order, matching a standalone
//!   [`RenderSession`]);
//! - schedules, streams, and summaries are **thread-invariant** at
//!   `UNI_RENDER_THREADS ∈ {1, 4}`;
//! - [`WeightedFair`] equalizes per-weight sim-time credit within one
//!   frame's cost while sessions stay backlogged;
//! - [`Priority`] is strict across levels and round-robin within one;
//! - `coalesce_switches` pays strictly fewer boundary reconfigurations
//!   than interleaved round-robin on a mixed-pipeline workload;
//! - mid-serve [`RenderServer::admit`] / [`RenderServer::close`] keep the
//!   stream bit-deterministic across thread counts.
//!
//! Every test mutates the process-wide `UNI_RENDER_THREADS` variable (or
//! renders while another test might), so they all serialize on one lock.

use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use uni_render::prelude::*;

mod common;
use common::{env_lock, fnv1a_image as frame_hash, renderer, with_threads, RESOLUTIONS};

/// Delivery order, per-session frame hashes, and final summary of one
/// served run.
type ServedRun = (Vec<(usize, usize)>, Vec<Vec<u64>>, ServerSummary);

/// A fresh-instance constructor for one scheduling policy.
type PolicyFactory = fn() -> Box<dyn SchedulePolicy>;

fn scene() -> Arc<BakedScene> {
    static SCENE: OnceLock<Arc<BakedScene>> = OnceLock::new();
    Arc::clone(SCENE.get_or_init(|| {
        Arc::new(
            SceneSpec::demo("serve-policies", 55)
                .with_detail(0.03)
                .bake(),
        )
    }))
}

/// One generated session: pipeline choice, frame count, resolution.
#[derive(Debug, Clone, Copy)]
struct Mix {
    pipeline: usize,
    frames: usize,
    resolution: (u32, u32),
}

fn path_for(session: usize, mix: Mix) -> CameraPath {
    let (w, h) = mix.resolution;
    let orbit = scene().spec().orbit(w, h);
    CameraPath::orbit_arc(orbit, 0.6 * session as f32, 2.0, mix.frames)
}

/// Deterministic per-session scheduling attributes so every policy has
/// something nontrivial to decide over.
fn request_for(id: usize, mix: Mix) -> SessionRequest {
    SessionRequest::new(renderer(mix.pipeline), path_for(id, mix))
        .weight(1 + (id % 3) as u32)
        .priority((id % 2) as u8)
}

/// Renders every session standalone: per-session, per-frame hashes.
fn standalone_hashes(mixes: &[Mix]) -> Vec<Vec<u64>> {
    mixes
        .iter()
        .enumerate()
        .map(|(id, &mix)| {
            let mut session =
                RenderSession::new(scene(), renderer(mix.pipeline), path_for(id, mix));
            let mut hashes = Vec::with_capacity(mix.frames);
            while let Some(frame) = session.next_frame() {
                hashes.push(frame_hash(&frame.image));
                session.recycle(frame.image);
            }
            hashes
        })
        .collect()
}

/// Serves every session through one server under `policy`: the delivery
/// order, per-session frame hashes (indexed like `standalone_hashes`),
/// and the end-of-run summary.
fn served(mixes: &[Mix], policy: Box<dyn SchedulePolicy>, lanes: usize) -> ServedRun {
    let mut server = RenderServer::new(scene())
        .with_accelerator(Accelerator::new(AcceleratorConfig::paper()))
        .with_policy(policy)
        .with_lanes(lanes);
    for (id, &mix) in mixes.iter().enumerate() {
        server.admit(request_for(id, mix));
    }
    let mut order = Vec::new();
    let mut hashes: Vec<Vec<u64>> = mixes.iter().map(|m| Vec::with_capacity(m.frames)).collect();
    while let Some(frame) = server.next_frame() {
        assert_eq!(
            hashes[frame.session].len(),
            frame.report.index,
            "frames of one session arrive in path order"
        );
        order.push((frame.session, frame.report.index));
        hashes[frame.session].push(frame_hash(&frame.report.image));
        server.recycle(frame.session, frame.report.image);
    }
    (order, hashes, server.summary())
}

/// One factory per built-in policy (fresh instance per serve, since a
/// server consumes its policy); the name is taken from an instance so
/// the pair can never drift out of sync.
fn policies() -> Vec<(&'static str, PolicyFactory)> {
    fn rr() -> Box<dyn SchedulePolicy> {
        Box::new(RoundRobin::new())
    }
    fn rr_coalesced() -> Box<dyn SchedulePolicy> {
        Box::new(RoundRobin::new().coalesce_switches(true))
    }
    fn wf() -> Box<dyn SchedulePolicy> {
        Box::new(WeightedFair::new())
    }
    fn prio() -> Box<dyn SchedulePolicy> {
        Box::new(Priority::new())
    }
    let factories: [PolicyFactory; 4] = [rr, rr_coalesced, wf, prio];
    factories.iter().map(|&f| (f().name(), f)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]
    #[test]
    fn every_policy_serves_a_bit_identical_permutation_of_round_robin(
        raw in proptest::collection::vec((0usize..6, 1usize..3, 0usize..3), 1..5),
    ) {
        let _guard = env_lock();
        let mixes: Vec<Mix> = raw
            .iter()
            .map(|&(pipeline, frames, res)| Mix {
                pipeline,
                frames,
                resolution: RESOLUTIONS[res],
            })
            .collect();
        let total: usize = mixes.iter().map(|m| m.frames).sum();
        let solo = with_threads("1", || standalone_hashes(&mixes));

        for (name, fresh) in policies() {
            let mut reference: Option<ServedRun> = None;
            for threads in ["1", "4"] {
                let run = with_threads(threads, || served(&mixes, fresh(), 4));
                let (order, hashes, summary) = &run;
                // Permutation of the round-robin stream with bit-identical
                // frames: every session's stream is complete, in path
                // order, and matches the standalone session exactly.
                prop_assert!(hashes == &solo, "policy {} altered frames", name);
                prop_assert_eq!(order.len(), total);
                prop_assert!(summary.is_consistent());
                prop_assert_eq!(summary.scheduled_frames, total);
                prop_assert_eq!(&summary.policy, name);
                // Thread count changes nothing: schedule, images, stats.
                if let Some(reference) = &reference {
                    prop_assert!(reference == &run, "policy {} is thread-variant", name);
                } else {
                    reference = Some(run);
                }
            }
        }
    }
}

/// WeightedFair equalizes accumulated sim-time per unit weight: while
/// every session stays backlogged, any two sessions' credits differ by
/// at most one frame's sim cost, so sim-time shares track weights.
#[test]
fn weighted_fair_shares_follow_weights_within_one_frame() {
    let _guard = env_lock();
    with_threads("1", || {
        let weights = [1u32, 2, 3];
        let mut server = RenderServer::new(scene())
            .with_accelerator(Accelerator::new(AcceleratorConfig::paper()))
            .with_policy(WeightedFair::new())
            .with_lanes(2);
        for (id, &w) in weights.iter().enumerate() {
            let mix = Mix {
                pipeline: 0,
                frames: 20,
                resolution: (24, 16),
            };
            server.admit(SessionRequest::new(renderer(mix.pipeline), path_for(id, mix)).weight(w));
        }
        // Stop mid-stream while everyone is still backlogged: complete
        // runs are bounded by path lengths, not by the policy.
        let mut max_frame_seconds: f64 = 0.0;
        for _ in 0..12 {
            let frame = server.next_frame().expect("backlogged");
            let sim = frame.report.sim.as_ref().expect("simulated");
            max_frame_seconds = max_frame_seconds.max(sim.seconds);
            server.recycle(frame.session, frame.report.image);
        }
        let summary = server.summary();
        assert_eq!(summary.policy, "weighted_fair");
        let seconds: Vec<f64> = summary.per_session.iter().map(|s| s.seconds).collect();
        for i in 0..weights.len() {
            for j in 0..weights.len() {
                let credit_i = seconds[i] / f64::from(weights[i]);
                let credit_j = seconds[j] / f64::from(weights[j]);
                assert!(
                    (credit_i - credit_j).abs() <= max_frame_seconds + 1e-12,
                    "sessions {i} and {j}: credits {credit_i:.6e} vs {credit_j:.6e} \
                     drift beyond one frame ({max_frame_seconds:.6e})"
                );
            }
        }
        // Shares therefore track weights: the heaviest session consumed
        // the most sim-time, the lightest the least.
        assert!(summary.sim_time_share(2) > summary.sim_time_share(1));
        assert!(summary.sim_time_share(1) > summary.sim_time_share(0));
        let shares = summary.sim_time_shares();
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    });
}

/// Priority is strict across levels (all higher-level frames first) and
/// round-robin inside a level.
#[test]
fn priority_serves_levels_strictly_with_round_robin_inside() {
    let _guard = env_lock();
    with_threads("1", || {
        let mut server = RenderServer::new(scene())
            .with_policy(Priority::new())
            .with_lanes(2);
        let mix = |frames| Mix {
            pipeline: 0,
            frames,
            resolution: (16, 12),
        };
        server.admit(SessionRequest::new(renderer(0), path_for(0, mix(3))).priority(0));
        server.admit(SessionRequest::new(renderer(1), path_for(1, mix(2))).priority(5));
        server.admit(SessionRequest::new(renderer(2), path_for(2, mix(2))).priority(5));
        let mut order = Vec::new();
        while let Some(frame) = server.next_frame() {
            order.push((frame.session, frame.report.index));
            server.recycle(frame.session, frame.report.image);
        }
        assert_eq!(
            order,
            vec![(1, 0), (2, 0), (1, 1), (2, 1), (0, 0), (0, 1), (0, 2)],
            "level 5 round-robins to completion before level 0 runs"
        );
    });
}

/// Batching same-pipeline frames amortizes boundary reconfigurations:
/// on a 4-session mixed-pipeline workload the coalesced schedule pays
/// strictly fewer switches than interleaved round-robin, while serving
/// the exact same frames.
#[test]
fn coalescing_pays_strictly_fewer_reconfigurations_than_round_robin() {
    let _guard = env_lock();
    with_threads("1", || {
        // Four sessions, four distinct pipelines — the worst case for an
        // interleaved schedule (gaussian/hashgrid/mesh boundaries all
        // switch families).
        let mixes: Vec<Mix> = [4usize, 0, 3, 1]
            .iter()
            .map(|&pipeline| Mix {
                pipeline,
                frames: 3,
                resolution: (24, 16),
            })
            .collect();
        let (_, rr_hashes, rr) = served(&mixes, Box::new(RoundRobin::new()), 2);
        let (_, co_hashes, co) = served(
            &mixes,
            Box::new(RoundRobin::new().coalesce_switches(true)),
            2,
        );
        assert_eq!(rr_hashes, co_hashes, "coalescing must not change frames");
        assert!(
            co.boundary_reconfigurations < rr.boundary_reconfigurations,
            "coalesced {} vs round-robin {} boundary switches",
            co.boundary_reconfigurations,
            rr.boundary_reconfigurations
        );
        assert!(co.reconfigurations_per_frame() < rr.reconfigurations_per_frame());
    });
}

/// Cost-aware coalescing against the fixed `coalesce_switches` knob on
/// the pinned 4-session mixed-pipeline workload: it pays **no more**
/// reconfigurations per frame, and it **never worsens the worst slack**
/// of a deadline-bound session — because it batches by urgency order and
/// breaks a batch whenever the learned switch saving stops covering the
/// induced slack loss. (The permutation/thread-invariance proptests for
/// `CostAware` and `EarliestDeadline` live in `tests/server_deadlines.rs`.)
#[test]
fn cost_aware_coalescing_never_pays_more_switches_nor_worse_slack() {
    let _guard = env_lock();
    with_threads("1", || {
        // The coalescing worst case again — four sessions, four distinct
        // pipelines — with a deadline-bound session buried at id 2, where
        // the id-ordered fixed coalescer serves it late.
        let mixes: Vec<Mix> = [4usize, 0, 3, 1]
            .iter()
            .map(|&pipeline| Mix {
                pipeline,
                frames: 3,
                resolution: (24, 16),
            })
            .collect();
        // Deadline loose enough that batch scheduling can meet it (the
        // whole workload is 12 frames), tight enough that *when* the
        // session is served moves its slack: one period per round of the
        // total sim time, measured by a calibration serve.
        let total_seconds = served(&mixes, Box::new(RoundRobin::new()), 2)
            .2
            .total_seconds;
        let deadline_hz = mixes.len() as f64 * mixes[0].frames as f64 / (2.0 * total_seconds);
        let serve_with_deadline = |policy: Box<dyn SchedulePolicy>| {
            let mut server = RenderServer::new(scene())
                .with_accelerator(Accelerator::new(AcceleratorConfig::paper()))
                .with_policy(policy)
                .with_lanes(2);
            for (id, &mix) in mixes.iter().enumerate() {
                let mut request = request_for(id, mix);
                if id == 2 {
                    request = request.deadline_hz(deadline_hz);
                }
                server.admit(request);
            }
            let mut hashes: Vec<Vec<u64>> =
                mixes.iter().map(|m| Vec::with_capacity(m.frames)).collect();
            while let Some(frame) = server.next_frame() {
                hashes[frame.session].push(frame_hash(&frame.report.image));
                server.recycle(frame.session, frame.report.image);
            }
            (hashes, server.summary())
        };
        let (co_hashes, co) =
            serve_with_deadline(Box::new(RoundRobin::new().coalesce_switches(true)));
        let (ca_hashes, ca) = serve_with_deadline(Box::new(CostAware::new()));
        assert_eq!(ca.policy, "cost_aware");
        assert_eq!(
            co_hashes, ca_hashes,
            "cost awareness must not change the frames"
        );
        assert!(
            ca.reconfigurations_per_frame() <= co.reconfigurations_per_frame(),
            "cost-aware pays {} reconfigs/frame vs fixed coalescer {}",
            ca.reconfigurations_per_frame(),
            co.reconfigurations_per_frame()
        );
        let co_worst = co.worst_slack().expect("deadline session served");
        let ca_worst = ca.worst_slack().expect("deadline session served");
        assert!(
            ca_worst >= co_worst,
            "cost-aware worst slack {ca_worst:.6e} must not fall below the \
             fixed coalescer's {co_worst:.6e}"
        );
        // On this mix urgency ordering actually *improves* the deadline
        // session's worst slack — the win the serve bench pins.
        assert!(
            ca_worst > co_worst,
            "urgency-ordered batches should serve the deadline session \
             earlier ({ca_worst:.6e} vs {co_worst:.6e})"
        );
        assert_eq!(ca.deadline_misses, 0, "the loose deadline is met");
    });
}

/// Mid-serve admission and early close keep the served stream
/// bit-identical across thread counts, and admitted sessions' frames
/// match a standalone session exactly.
#[test]
fn mid_serve_churn_is_bit_deterministic_across_thread_counts() {
    let _guard = env_lock();
    let churn = |threads: &str| {
        with_threads(threads, || {
            let mixes: Vec<Mix> = (0..3)
                .map(|id| Mix {
                    pipeline: id,
                    frames: 6,
                    resolution: (24, 16),
                })
                .collect();
            let late_mix = Mix {
                pipeline: 3,
                frames: 3,
                resolution: (16, 12),
            };
            let mut server = RenderServer::new(scene())
                .with_accelerator(Accelerator::new(AcceleratorConfig::paper()))
                .with_policy(WeightedFair::new())
                .with_lanes(4);
            let mut handles = Vec::new();
            for (id, &mix) in mixes.iter().enumerate() {
                handles.push(server.admit(request_for(id, mix)));
            }
            let mut stream = Vec::new();
            let mut late = None;
            while let Some(frame) = server.next_frame() {
                stream.push((
                    frame.session,
                    frame.report.index,
                    frame_hash(&frame.report.image),
                ));
                server.recycle(frame.session, frame.report.image);
                if stream.len() == 3 {
                    late = Some(
                        server.admit(
                            SessionRequest::new(renderer(late_mix.pipeline), path_for(3, late_mix))
                                .weight(2)
                                .label("late joiner"),
                        ),
                    );
                }
                if stream.len() == 6 {
                    assert!(server.close(handles[1]), "open session closes");
                }
            }
            let late = late.expect("admitted mid-serve");
            let summary = server.summary();
            assert!(summary.is_consistent());
            assert_eq!(summary.admissions, 1);
            assert_eq!(summary.closes, 1);
            assert!(summary.per_session[1].closed_early);
            assert!(summary.per_session[1].frames < 6, "close cancelled frames");
            assert_eq!(
                summary.per_session[late.id()].frames,
                late_mix.frames,
                "late session served fully"
            );
            // The late session's frames are bit-identical to a
            // standalone session walking the same path.
            let mut solo =
                RenderSession::new(scene(), renderer(late_mix.pipeline), path_for(3, late_mix));
            let mut solo_hashes = Vec::new();
            while let Some(frame) = solo.next_frame() {
                solo_hashes.push(frame_hash(&frame.image));
                solo.recycle(frame.image);
            }
            let served_late: Vec<u64> = stream
                .iter()
                .filter(|(s, _, _)| *s == late.id())
                .map(|&(_, _, h)| h)
                .collect();
            assert_eq!(served_late, solo_hashes);
            (stream, summary)
        })
    };
    assert_eq!(
        churn("1"),
        churn("4"),
        "churn timing must be lane-invariant"
    );
}

/// Closing a still-*staged* session (admitted mid-serve, activation slot
/// not yet reached) cancels the pending activation outright: the session
/// serves zero frames, leaves no ghost slot in the sim-time shares, and
/// the rest of the stream is bit-identical to a run that never saw the
/// churn — at any thread count.
#[test]
fn close_of_a_staged_session_cancels_its_activation() {
    let _guard = env_lock();
    let mixes: Vec<Mix> = (0..2)
        .map(|id| Mix {
            pipeline: id,
            frames: 5,
            resolution: (24, 16),
        })
        .collect();
    let ghost_mix = Mix {
        pipeline: 4,
        frames: 4,
        resolution: (16, 12),
    };
    let serve = |threads: &str, churn: bool| {
        with_threads(threads, || {
            let mut server = RenderServer::new(scene())
                .with_accelerator(Accelerator::new(AcceleratorConfig::paper()))
                .with_policy(WeightedFair::new())
                .with_lanes(4);
            for (id, &mix) in mixes.iter().enumerate() {
                server.admit(request_for(id, mix));
            }
            let mut stream = Vec::new();
            let mut ghost = None;
            while let Some(frame) = server.next_frame() {
                stream.push((
                    frame.session,
                    frame.report.index,
                    frame_hash(&frame.report.image),
                ));
                server.recycle(frame.session, frame.report.image);
                if churn && stream.len() == 2 {
                    // Admit and close in the same delivery: the close
                    // lands while the admission is still staged.
                    let handle = server.admit(
                        SessionRequest::new(renderer(ghost_mix.pipeline), path_for(2, ghost_mix))
                            .label("ghost"),
                    );
                    assert!(server.close(handle), "staged session accepts a close");
                    ghost = Some(handle);
                }
            }
            let summary = server.summary();
            assert!(summary.is_consistent());
            if let Some(ghost) = ghost {
                let stats = server.session_stats(ghost).expect("ghost stats");
                assert_eq!(stats.frames, 0, "cancelled activation serves nothing");
                assert!(stats.closed_early);
                assert_eq!(stats.seconds, 0.0, "no sim time charged to the ghost");
                assert_eq!(
                    summary.sim_time_share(ghost.id()),
                    0.0,
                    "no ghost slot skews the shares"
                );
                let live_shares: f64 = summary.sim_time_shares().iter().sum();
                assert!(
                    (live_shares - 1.0).abs() < 1e-9,
                    "shares still sum to 1 over the real sessions"
                );
            }
            (stream, summary.total_seconds.to_bits())
        })
    };
    let (churned_1, seconds_1) = serve("1", true);
    let (churned_4, seconds_4) = serve("4", true);
    assert_eq!(churned_1, churned_4, "cancelled churn is lane-invariant");
    assert_eq!(seconds_1, seconds_4);
    let (clean, _) = serve("1", false);
    assert_eq!(
        churned_1, clean,
        "an admit+close round trip on a staged session must leave the \
         served stream untouched"
    );
}
