//! Machine-checks the zero-steady-state-allocation contract that
//! `README.md` promises and R7 of `uni-lint` enforces lexically: after a
//! short warmup (scratch arenas grown, framebuffer pooled), an image-only
//! [`RenderSession`] streams frames without touching the global
//! allocator. A counting `#[global_allocator]` measures every
//! `next_frame` + `recycle` cycle, per pipeline.
//!
//! At `UNI_RENDER_THREADS=1` the contract is absolute: zero allocation
//! events per steady-state frame. At higher thread counts the band
//! fan-out spawns scoped workers each frame — those allocate (thread
//! state, job cells) a small, resolution-independent amount, so there
//! the contract is a per-frame *bound* of O(workers): a per-ray or
//! per-pixel allocation leak blows it by orders of magnitude. CI runs
//! this file at `UNI_RENDER_THREADS=1` and `4`.

mod common;

use common::alloc::CountingAlloc;
use std::sync::{Arc, OnceLock};
use uni_render::prelude::*;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Frames rendered before measurement starts: enough for the framebuffer
/// pool, thread-local scratch arenas, and accounting state to reach
/// their steady-state footprint.
const WARMUP_FRAMES: usize = 3;
/// Steady-state frames measured after warmup.
const MEASURED_FRAMES: usize = 6;

const PIPELINES: [&str; 6] = ["mesh", "mlp", "lowrank", "hashgrid", "gaussian", "mixrt"];

fn scene() -> &'static Arc<BakedScene> {
    static SCENE: OnceLock<Arc<BakedScene>> = OnceLock::new();
    SCENE.get_or_init(|| Arc::new(SceneSpec::demo("steady", 77).with_detail(0.03).bake()))
}

/// Streams one image-only session and returns the allocation events
/// counted inside each `next_frame` + `recycle` cycle.
fn frame_alloc_counts(pipeline: usize) -> Vec<u64> {
    let total = WARMUP_FRAMES + MEASURED_FRAMES;
    let path = CameraPath::orbit(scene().spec().orbit(32, 24), total);
    let mut session = RenderSession::new(Arc::clone(scene()), common::renderer(pipeline), path);
    let mut counts = Vec::with_capacity(total);
    for _ in 0..total {
        let before = ALLOC.allocations();
        let frame = session.next_frame().expect("path not exhausted");
        session.recycle(frame.image);
        counts.push(ALLOC.allocations() - before);
    }
    counts
}

/// The per-frame counts after warmup, with context on failure.
fn steady(counts: &[u64]) -> &[u64] {
    &counts[WARMUP_FRAMES..]
}

#[test]
fn steady_state_frames_do_not_allocate_single_threaded() {
    let _guard = common::env_lock();
    common::with_threads("1", || {
        let all: Vec<(&str, Vec<u64>)> = PIPELINES
            .iter()
            .enumerate()
            .map(|(i, name)| (*name, frame_alloc_counts(i)))
            .collect();
        for (name, counts) in &all {
            assert!(
                steady(counts).iter().all(|&c| c == 0),
                "{name}: expected zero steady-state allocations per frame \
                 at UNI_RENDER_THREADS=1, got {counts:?} \
                 (first {WARMUP_FRAMES} are warmup); all pipelines: {all:?}"
            );
        }
    });
}

#[test]
fn steady_state_frames_allocate_bounded_multi_threaded() {
    // 32 allocation events per worker per frame comfortably covers two
    // band fan-outs (scoped spawn machinery + result cells) while
    // sitting orders of magnitude below any per-ray or per-pixel leak
    // (the 32×24 frames here trace ~768 primary rays).
    const PER_WORKER_BUDGET: u64 = 32;
    let workers = 4u64;
    let _guard = common::env_lock();
    common::with_threads("4", || {
        for (i, name) in PIPELINES.iter().enumerate() {
            let counts = frame_alloc_counts(i);
            assert!(
                steady(&counts)
                    .iter()
                    .all(|&c| c <= PER_WORKER_BUDGET * workers),
                "{name}: steady-state per-frame allocations must stay \
                 O(workers) at UNI_RENDER_THREADS=4 — budget {} — got \
                 {counts:?} (first {WARMUP_FRAMES} are warmup)",
                PER_WORKER_BUDGET * workers
            );
        }
    });
}

/// The framebuffer itself is pooled: the whole measured stream reuses
/// one allocation per session as long as frames are recycled.
#[test]
fn framebuffer_pool_reuses_one_allocation() {
    let _guard = common::env_lock();
    common::with_threads("1", || {
        let path = CameraPath::orbit(scene().spec().orbit(32, 24), 5);
        let mut session = RenderSession::new(Arc::clone(scene()), common::renderer(0), path);
        while let Some(frame) = session.next_frame() {
            session.recycle(frame.image);
        }
        assert_eq!(session.pool().allocations(), 1);
    });
}
