//! The overload contract of [`RenderServer`]: saying *no* — and serving
//! worse — must not cost determinism.
//!
//! - The [`AdmitDecision`] stream, the served frame stream (hashes,
//!   resolution shifts, slack), and the summary are **bit-identical** at
//!   `UNI_RENDER_THREADS ∈ {1, 4}` even when the load forces refusals,
//!   queued admissions, resolution degradation, frame skips, and
//!   shedding — every one of those is a schedule-order decision, never
//!   a lane-timing one;
//! - skip accounting equals a **manual replay** of the delivered
//!   schedule: per session, the path indices missing from the delivered
//!   stream are exactly the frames the skip counter claims;
//! - a crafted hopeless mix exercises all three [`AdmitDecision`]
//!   variants, and refused requests leave no trace in the summary.
//!
//! Every test mutates the process-wide `UNI_RENDER_THREADS` variable, so
//! they all serialize on one lock.

use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use uni_render::prelude::*;

mod common;
use common::{env_lock, fnv1a_image as frame_hash, renderer, with_threads, RESOLUTIONS};

fn scene() -> Arc<BakedScene> {
    static SCENE: OnceLock<Arc<BakedScene>> = OnceLock::new();
    Arc::clone(SCENE.get_or_init(|| {
        Arc::new(
            SceneSpec::demo("serve-overload", 83)
                .with_detail(0.03)
                .bake(),
        )
    }))
}

/// One offered session: pipeline choice, frame count, resolution, and a
/// deadline period expressed in multiples of the workload's mean frame
/// cost (`None` = best-effort).
#[derive(Debug, Clone, Copy)]
struct Mix {
    pipeline: usize,
    frames: usize,
    resolution: (u32, u32),
    period_frames: Option<f64>,
}

fn path_for(session: usize, mix: Mix) -> CameraPath {
    let (w, h) = mix.resolution;
    let orbit = scene().spec().orbit(w, h);
    CameraPath::orbit_arc(orbit, 0.9 * session as f32, 2.0, mix.frames)
}

/// Mean simulated seconds of one frame, measured by a calibration serve
/// with no deadlines. Deterministic and thread-invariant, so every
/// thread count derives identical admission priors from it.
fn mean_frame_seconds(mixes: &[Mix]) -> f64 {
    let mut server = RenderServer::new(scene())
        .with_accelerator(Accelerator::new(AcceleratorConfig::paper()))
        .with_lanes(2);
    for (id, &mix) in mixes.iter().enumerate() {
        server.admit(SessionRequest::new(
            renderer(mix.pipeline),
            path_for(id, mix),
        ));
    }
    let summary = server.run();
    summary.total_seconds / summary.scheduled_frames.max(1) as f64
}

fn request_for(id: usize, mix: Mix, frame_seconds: f64) -> SessionRequest {
    let mut request = SessionRequest::new(renderer(mix.pipeline), path_for(id, mix))
        .weight(1 + (id % 3) as u32)
        .priority((id % 2) as u8);
    if let Some(periods) = mix.period_frames {
        request = request.deadline_hz(1.0 / (periods * frame_seconds).max(f64::MIN_POSITIVE));
    }
    request
}

/// An [`AdmitDecision`] flattened to bit-comparable integers:
/// `(variant, handle id or MAX, activation slot or slack bits)`.
fn decision_key(decision: &AdmitDecision) -> (u8, usize, u64) {
    match decision {
        AdmitDecision::Admitted(handle) => (0, handle.id(), 0),
        AdmitDecision::Queued {
            handle,
            activates_at,
        } => (1, handle.id(), *activates_at as u64),
        AdmitDecision::Refused { predicted_slack } => (2, usize::MAX, predicted_slack.to_bits()),
    }
}

/// Decision stream, delivered stream (session, index, frame hash,
/// resolution shift, slack bits), and final summary of one overloaded
/// serve.
type OverloadRun = (
    Vec<(u8, usize, u64)>,
    Vec<(usize, usize, u64, u32, u64)>,
    ServerSummary,
);

/// Offers every mix through [`RenderServer::try_admit`] against a tight
/// admission controller, serves whatever got in under degradation, and
/// records every externally observable artifact of the run.
fn overload_served(mixes: &[Mix], frame_seconds: f64, lanes: usize) -> OverloadRun {
    let mut server = RenderServer::new(scene())
        .with_accelerator(Accelerator::new(AcceleratorConfig::paper()))
        .with_policy(EarliestDeadline::new())
        .with_lanes(lanes)
        .with_admission_control(
            AdmissionControl::new()
                .frame_cost_prior(frame_seconds)
                .max_queued(2),
        )
        .with_degradation(
            DegradePolicy::new()
                .degrade_after_misses(1)
                .recover_after_meets(2)
                .skip_when_late_periods(1.0)
                .shed_after_misses(5),
        );
    let mut decisions = Vec::new();
    for (id, &mix) in mixes.iter().enumerate() {
        decisions.push(decision_key(&server.try_admit(request_for(
            id,
            mix,
            frame_seconds,
        ))));
    }
    let mut stream = Vec::new();
    let mut late_offer = mixes.len();
    while let Some(frame) = server.next_frame() {
        stream.push((
            frame.session,
            frame.report.index,
            frame_hash(&frame.report.image),
            frame.resolution_shift,
            frame.deadline_slack.map_or(u64::MAX, f64::to_bits),
        ));
        server.recycle(frame.session, frame.report.image);
        // One mid-serve offer at a fixed delivery slot: admission must
        // stay a schedule-order decision even while lanes are hot.
        if stream.len() == 3 && late_offer == mixes.len() {
            let mix = Mix {
                pipeline: 4,
                frames: 2,
                resolution: RESOLUTIONS[0],
                period_frames: Some(1.0),
            };
            decisions.push(decision_key(&server.try_admit(request_for(
                late_offer,
                mix,
                frame_seconds,
            ))));
            late_offer += 1;
        }
    }
    (decisions, stream, server.summary())
}

fn mixes_from(raw: &[(usize, usize, usize, usize)]) -> Vec<Mix> {
    raw.iter()
        .map(|&(pipeline, frames, res, periods)| Mix {
            pipeline,
            frames,
            resolution: RESOLUTIONS[res],
            // periods 0 = best-effort; 1..5 = deadline periods from a
            // hopeless single frame cost to a roomy four of them.
            period_frames: match periods {
                0 => None,
                p => Some(p as f64),
            },
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]
    /// Refused, queued, and degraded streams are bit-identical across
    /// thread counts: the whole overload response — who got in, who
    /// waited, who was dropped, which frames shrank or were skipped —
    /// is a pure function of the schedule.
    #[test]
    fn overload_response_is_bit_deterministic_across_thread_counts(
        raw in proptest::collection::vec((0usize..6, 2usize..5, 0usize..3, 0usize..5), 4..8),
    ) {
        let _guard = env_lock();
        let mixes = mixes_from(&raw);
        let frame_seconds = with_threads("1", || mean_frame_seconds(&mixes));

        let reference = with_threads("1", || overload_served(&mixes, frame_seconds, 1));
        let wide = with_threads("4", || overload_served(&mixes, frame_seconds, 4));
        prop_assert!(reference == wide, "overload response is thread-variant");

        let (decisions, stream, summary) = &reference;
        prop_assert!(summary.is_consistent());
        // The decision stream reconciles with the summary counters.
        let refused = decisions.iter().filter(|d| d.0 == 2).count() as u64;
        let queued = decisions.iter().filter(|d| d.0 == 1).count() as u64;
        prop_assert_eq!(summary.refusals, refused);
        prop_assert_eq!(summary.queued_admissions, queued);
        // Refused requests leave no session behind.
        prop_assert_eq!(
            summary.per_session.len(),
            decisions.len() - refused as usize
        );
        // Delivered + skipped + shed-cancelled covers every admitted
        // session's path exactly.
        for stats in &summary.per_session {
            let delivered = stream.iter().filter(|f| f.0 == stats.session).count();
            prop_assert_eq!(delivered, stats.frames);
        }
    }
}

/// Skip accounting equals a manual replay of the delivered schedule:
/// the path indices a session never delivered are exactly the frames
/// its skip counter claims, per session and in aggregate.
#[test]
fn skip_accounting_matches_a_manual_replay_of_the_delivered_schedule() {
    let _guard = env_lock();
    // Four sessions under a deadline of ~1.3 frame costs each: with four
    // streams sharing the schedule every period is hopeless, so the
    // degradation controller must skip (and shrink) to catch up. High
    // shed threshold keeps every session live to the end of its path.
    let mixes: Vec<Mix> = (0..4)
        .map(|id| Mix {
            pipeline: id + 1,
            frames: 6,
            resolution: RESOLUTIONS[id % 2],
            period_frames: Some(1.3),
        })
        .collect();
    let frame_seconds = with_threads("1", || mean_frame_seconds(&mixes));
    let (stream, summary) = with_threads("1", || {
        let mut server = RenderServer::new(scene())
            .with_accelerator(Accelerator::new(AcceleratorConfig::paper()))
            .with_policy(EarliestDeadline::new())
            .with_lanes(2)
            .with_degradation(
                DegradePolicy::new()
                    .degrade_after_misses(1)
                    .skip_when_late_periods(0.5)
                    .shed_after_misses(u32::MAX),
            );
        for (id, &mix) in mixes.iter().enumerate() {
            server.admit(request_for(id, mix, frame_seconds));
        }
        let mut stream = Vec::new();
        while let Some(frame) = server.next_frame() {
            stream.push((frame.session, frame.report.index, frame.resolution_shift));
            server.recycle(frame.session, frame.report.image);
        }
        (stream, server.summary())
    });
    assert!(summary.is_consistent());
    assert!(
        summary.frames_skipped > 0,
        "a hopeless mix must skip frames (skipped {}, misses {})",
        summary.frames_skipped,
        summary.deadline_misses
    );
    assert!(
        summary.degraded_frames > 0,
        "a hopeless mix must deliver degraded frames"
    );
    assert_eq!(summary.shed_sessions, 0, "shedding was disabled");
    for (id, mix) in mixes.iter().enumerate() {
        let stats = &summary.per_session[id];
        let delivered: Vec<usize> = stream.iter().filter(|f| f.0 == id).map(|f| f.1).collect();
        // Replay: delivered indices are a strictly increasing
        // subsequence of the path; the holes are the skips.
        assert!(
            delivered.windows(2).all(|w| w[0] < w[1]),
            "session {id} delivered out of path order"
        );
        assert_eq!(delivered.len(), stats.frames);
        assert_eq!(
            stats.frames as u64 + stats.frames_skipped,
            mix.frames as u64,
            "session {id}: every path frame is delivered or an accounted skip"
        );
        let holes = (0..mix.frames).filter(|i| !delivered.contains(i)).count() as u64;
        assert_eq!(
            holes, stats.frames_skipped,
            "session {id}: skip counter disagrees with the delivered stream's holes"
        );
        assert!(!stats.closed_early, "no session was closed or shed");
    }
    let skipped: u64 = summary.per_session.iter().map(|s| s.frames_skipped).sum();
    assert_eq!(skipped, summary.frames_skipped);
}

/// A crafted hopeless mix drives all three [`AdmitDecision`] variants:
/// early requests are admitted, the next ones queue behind the drain,
/// and once the queue is full the rest are refused with a negative
/// predicted slack. Queued sessions still deliver every frame.
#[test]
fn a_hopeless_mix_exercises_admission_queueing_and_refusal() {
    let _guard = env_lock();
    let mixes: Vec<Mix> = (0..8)
        .map(|id| Mix {
            pipeline: id % 6,
            frames: 3,
            resolution: RESOLUTIONS[0],
            period_frames: Some(1.2),
        })
        .collect();
    let frame_seconds = with_threads("1", || mean_frame_seconds(&mixes));
    let (decisions, stream, summary) =
        with_threads("1", || overload_served(&mixes, frame_seconds, 2));
    assert!(summary.is_consistent());
    let kinds: Vec<u8> = decisions.iter().map(|d| d.0).collect();
    assert!(kinds.contains(&0), "no request was admitted: {kinds:?}");
    assert!(kinds.contains(&1), "no request was queued: {kinds:?}");
    assert!(kinds.contains(&2), "no request was refused: {kinds:?}");
    assert_eq!(
        summary.queued_admissions as usize,
        kinds.iter().filter(|&&k| k == 1).count()
    );
    assert_eq!(
        summary.refusals as usize,
        kinds.iter().filter(|&&k| k == 2).count()
    );
    // Queued sessions activate and serve: every queued handle shows up
    // in the delivered stream unless it was shed first.
    for decision in decisions.iter().filter(|d| d.0 == 1) {
        let session = decision.1;
        let stats = &summary.per_session[session];
        let delivered = stream.iter().filter(|f| f.0 == session).count();
        assert_eq!(delivered, stats.frames);
        assert!(
            stats.frames > 0 || stats.shed,
            "queued session {session} neither served nor was shed"
        );
    }
    // Refused slack is the predicted overrun: strictly negative.
    for decision in decisions.iter().filter(|d| d.0 == 2) {
        let slack = f64::from_bits(decision.2);
        assert!(
            slack < 0.0,
            "refusal carried non-negative predicted slack {slack}"
        );
    }
}
