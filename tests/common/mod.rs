//! Helpers shared across the integration-test binaries.

use uni_render::prelude::Image;

/// FNV-1a over the raw little-endian f32 pixel bytes — equal hashes mean
/// bit-identical frames. Both the serving determinism property test and
/// the golden-frame harness pin output through this one definition, so
/// "bit-identical" cannot drift between them.
pub fn fnv1a_image(image: &Image) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for px in image.pixels() {
        for channel in [px.r, px.g, px.b] {
            for byte in channel.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
    }
    h
}
