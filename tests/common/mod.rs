//! Helpers shared across the integration-test binaries.
//!
//! Not every binary uses every helper, hence the `dead_code` allowances.

pub mod alloc;

use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use uni_render::prelude::Image;
use uni_render::prelude::{
    GaussianPipeline, HashGridPipeline, LowRankPipeline, MeshPipeline, MixRtPipeline, MlpPipeline,
    Renderer,
};

/// Serialization point for tests that mutate the process-wide
/// `UNI_RENDER_THREADS` variable (or render while another test might).
#[allow(dead_code)]
pub fn env_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Runs `f` under a pinned worker count (caller holds [`env_lock`]).
///
/// Pins through [`uni_render::parallel::set_worker_count`] — so
/// `worker_count()` stays off the allocator inside `f`, which the
/// steady-state allocation harness measures — and mirrors the pin into
/// `UNI_RENDER_THREADS` for anything that re-reads the environment.
#[allow(dead_code)]
pub fn with_threads<R>(threads: &str, f: impl FnOnce() -> R) -> R {
    std::env::set_var("UNI_RENDER_THREADS", threads);
    let prev = uni_render::parallel::set_worker_count(threads.trim().parse().ok());
    let result = f();
    uni_render::parallel::set_worker_count(prev);
    std::env::remove_var("UNI_RENDER_THREADS");
    result
}

/// The six pipelines by dense index — the shared session-mix generator
/// of the serving test harnesses.
#[allow(dead_code)]
pub fn renderer(index: usize) -> Box<dyn Renderer + Send> {
    match index {
        0 => Box::new(MeshPipeline::default()),
        1 => Box::new(MlpPipeline::default()),
        2 => Box::new(LowRankPipeline::default()),
        3 => Box::new(HashGridPipeline::default()),
        4 => Box::new(GaussianPipeline::default()),
        _ => Box::new(MixRtPipeline::default()),
    }
}

/// Session resolutions the generated serving mixes cycle through.
#[allow(dead_code)]
pub const RESOLUTIONS: [(u32, u32); 3] = [(16, 12), (24, 16), (32, 24)];

/// FNV-1a over the raw little-endian f32 pixel bytes — equal hashes mean
/// bit-identical frames. Both the serving determinism property test and
/// the golden-frame harness pin output through this one definition, so
/// "bit-identical" cannot drift between them.
#[allow(dead_code)]
pub fn fnv1a_image(image: &Image) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for px in image.pixels() {
        for channel in [px.r, px.g, px.b] {
            for byte in channel.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
    }
    h
}
