//! A counting `GlobalAlloc` wrapper for the steady-state allocation
//! tests. The static itself lives in `tests/steady_state_alloc.rs` (a
//! `#[global_allocator]` here would hijack every test binary that pulls
//! in `common`); this module only defines the type.

// Only the steady-state binary exercises this module; the other test
// binaries compile it unused.
#![allow(dead_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Forwards to the system allocator while counting every allocation
/// (including `realloc` growths and zeroed allocations) process-wide,
/// across all threads.
pub struct CountingAlloc {
    allocations: AtomicU64,
    bytes: AtomicU64,
}

impl CountingAlloc {
    pub const fn new() -> Self {
        Self {
            allocations: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Total allocation events since process start.
    pub fn allocations(&self) -> u64 {
        self.allocations.load(Ordering::SeqCst)
    }

    /// Total bytes requested since process start (never decremented —
    /// a monotone high-water meter, not a live-bytes gauge).
    pub fn bytes_allocated(&self) -> u64 {
        self.bytes.load(Ordering::SeqCst)
    }

    fn record(&self, size: usize) {
        self.allocations.fetch_add(1, Ordering::SeqCst);
        self.bytes.fetch_add(size as u64, Ordering::SeqCst);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.record(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.record(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.record(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}
