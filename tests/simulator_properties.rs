//! Property-based tests on the accelerator simulator and baseline models:
//! monotonicity, conservation, and cross-model invariants that must hold
//! for any workload, not just the paper's.

use proptest::prelude::*;
use uni_render::accel::{Accelerator, AcceleratorConfig};
use uni_render::baselines::{commercial_devices, orin_nx, Device};
use uni_render::microops::{Dims, IndexFunction, Invocation, MicroOp, Pipeline, Trace, Workload};

fn gemm(batch: u64, in_dim: u32, out_dim: u32) -> Invocation {
    Invocation::new(
        "gemm",
        Workload::Gemm {
            batch,
            in_dim,
            out_dim,
            weight_bytes: u64::from(in_dim) * u64::from(out_dim) * 2,
        },
    )
}

fn grid(points: u64, levels: u32, hashed: bool) -> Invocation {
    Invocation::new(
        "grid",
        Workload::GridIndex {
            points,
            levels,
            corners: 8,
            feature_dim: 4,
            table_bytes: 16 << 20,
            function: if hashed {
                IndexFunction::RandomHash
            } else {
                IndexFunction::LinearIndexing
            },
            dims: Dims::D3,
            decomposed: false,
        },
    )
}

fn trace_of(invs: Vec<Invocation>) -> Trace {
    let mut t = Trace::new(Pipeline::HashGrid, 640, 480);
    t.extend(invs);
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// More work never takes fewer cycles on the accelerator.
    #[test]
    fn prop_cycles_monotone_in_batch(
        batch in 1u64..1_000_000, extra in 1u64..1_000_000,
        in_dim in 1u32..128, out_dim in 1u32..128,
    ) {
        let accel = Accelerator::new(AcceleratorConfig::paper());
        let small = accel.simulate(&trace_of(vec![gemm(batch, in_dim, out_dim)]));
        let large = accel.simulate(&trace_of(vec![gemm(batch + extra, in_dim, out_dim)]));
        prop_assert!(large.cycles >= small.cycles);
        prop_assert!(large.energy.on_chip_j() >= small.energy.on_chip_j());
    }

    /// Splitting a GEMM into two invocations never beats the fused run
    /// (per-invocation setup and lost fusion). Square shapes are excluded:
    /// two equal-batch square GEMMs are indistinguishable from chained MLP
    /// layers at the IR level, so the scheduler legitimately fuses them.
    #[test]
    fn prop_splitting_work_is_never_faster(
        batch in 2u64..500_000, in_dim in 1u32..64, out_dim in 1u32..64,
    ) {
        prop_assume!(in_dim != out_dim);
        let accel = Accelerator::new(AcceleratorConfig::paper());
        let whole = accel.simulate(&trace_of(vec![gemm(batch, in_dim, out_dim)]));
        let halves = accel.simulate(&trace_of(vec![
            gemm(batch / 2, in_dim, out_dim),
            gemm(batch - batch / 2, in_dim, out_dim),
        ]));
        prop_assert!(halves.cycles + 8 >= whole.cycles);
    }

    /// Energy accounting is additive: simulating a concatenated trace
    /// costs at least as much as the larger part alone.
    #[test]
    fn prop_energy_superadditive(points in 1u64..2_000_000, levels in 1u32..16) {
        let accel = Accelerator::new(AcceleratorConfig::paper());
        let a = accel.simulate(&trace_of(vec![grid(points, levels, true)]));
        let both = accel.simulate(&trace_of(vec![
            grid(points, levels, true),
            gemm(points, 16, 4),
        ]));
        prop_assert!(both.energy.on_chip_j() > a.energy.on_chip_j());
        prop_assert!(both.cycles > a.cycles);
    }

    /// Per-op cycle attribution always sums to the frame (minus reconfig).
    #[test]
    fn prop_op_attribution_sums_to_frame(
        points in 1u64..1_000_000, batch in 1u64..1_000_000, keys in 2.0f64..512.0,
    ) {
        let accel = Accelerator::new(AcceleratorConfig::paper());
        let report = accel.simulate(&trace_of(vec![
            grid(points, 8, true),
            Invocation::new("sort", Workload::Sort {
                patches: 500,
                keys_per_patch: keys,
                entry_bytes: 8,
            }),
            gemm(batch, 32, 16),
        ]));
        let op_sum: u64 = report.per_op_cycles.values().sum();
        prop_assert_eq!(op_sum + report.reconfiguration_cycles, report.cycles);
        prop_assert_eq!(report.reconfigurations, 2);
    }

    /// Hashed gathers never cost less DRAM than linear gathers of the same
    /// shape (the refetch model's core asymmetry).
    #[test]
    fn prop_hash_traffic_at_least_linear(points in 1u64..4_000_000, levels in 1u32..16) {
        let accel = Accelerator::new(AcceleratorConfig::paper());
        let hashed = accel.simulate(&trace_of(vec![grid(points, levels, true)]));
        let linear = accel.simulate(&trace_of(vec![grid(points, levels, false)]));
        prop_assert!(hashed.dram_bytes >= linear.dram_bytes);
        prop_assert!(hashed.cycles >= linear.cycles);
    }

    /// Baseline devices report strictly positive, finite latencies for any
    /// nonempty trace, and their energy equals power × latency.
    #[test]
    fn prop_baselines_well_formed(batch in 1u64..1_000_000, points in 1u64..1_000_000) {
        let trace = trace_of(vec![grid(points, 8, true), gemm(batch, 64, 16)]);
        for d in commercial_devices() {
            let r = d.execute(&trace).expect("commercial devices run everything");
            prop_assert!(r.seconds.is_finite() && r.seconds > 0.0);
            prop_assert!((r.energy_j - r.seconds * d.power_w()).abs() < 1e-9);
        }
    }

    /// The accelerator's utilization stays in (0, 1] for any mixed trace.
    #[test]
    fn prop_utilization_bounded(
        points in 1u64..1_000_000, batch in 1u64..1_000_000, prims in 1u64..500_000,
    ) {
        let accel = Accelerator::new(AcceleratorConfig::paper());
        let report = accel.simulate(&trace_of(vec![
            Invocation::new("raster", Workload::Geometric {
                kind: uni_render::microops::PrimitiveKind::Triangle,
                primitives: prims,
                candidate_pairs: prims * 4,
                hits: prims,
                prim_bytes: 64,
                output_pixels: 640 * 480,
            }),
            grid(points, 8, false),
            gemm(batch, 16, 16),
        ]));
        prop_assert!(report.utilization > 0.0 && report.utilization <= 1.0);
    }
}

/// Deterministic cross-check: the Orin model must be slower than the
/// accelerator on a hash-heavy trace but competitive on a pure dense GEMM
/// trace — the flexibility argument in one assertion pair.
#[test]
fn orin_competitive_on_gemm_but_not_on_gather() {
    let accel = Accelerator::new(AcceleratorConfig::paper());
    let orin = orin_nx();

    let gather = trace_of(vec![grid(4 << 20, 16, true)]);
    let ours_gather = accel.simulate(&gather).seconds;
    let orin_gather = orin.execute(&gather).expect("runs").seconds;
    assert!(
        orin_gather / ours_gather > 3.0,
        "gathers favor the accelerator: {:.1}x",
        orin_gather / ours_gather
    );

    let dense = trace_of(vec![gemm(1 << 20, 256, 256)]);
    let ours_dense = accel.simulate(&dense).seconds;
    let orin_dense = orin.execute(&dense).expect("runs").seconds;
    let ratio = orin_dense / ours_dense;
    assert!(
        (0.2..=3.0).contains(&ratio),
        "dense GEMM is a fair fight against a 2.6 TFLOPS GPU: {ratio:.2}x"
    );
}

/// Micro-op coverage: every micro-operator can be driven through the
/// simulator directly (not only via renderer traces).
#[test]
fn all_micro_ops_simulate_standalone() {
    let accel = Accelerator::new(AcceleratorConfig::paper());
    let invs: Vec<(MicroOp, Invocation)> = vec![
        (
            MicroOp::GeometricProcessing,
            Invocation::new(
                "g",
                Workload::Geometric {
                    kind: uni_render::microops::PrimitiveKind::GaussianSplat,
                    primitives: 10_000,
                    candidate_pairs: 1 << 20,
                    hits: 1 << 16,
                    prim_bytes: 240,
                    output_pixels: 1 << 18,
                },
            ),
        ),
        (MicroOp::CombinedGridIndexing, grid(1 << 18, 16, true)),
        (
            MicroOp::DecomposedGridIndexing,
            Invocation::new(
                "d",
                Workload::GridIndex {
                    points: 1 << 18,
                    levels: 3,
                    corners: 4,
                    feature_dim: 8,
                    table_bytes: 32 << 20,
                    function: IndexFunction::LinearIndexing,
                    dims: Dims::D2,
                    decomposed: true,
                },
            ),
        ),
        (
            MicroOp::Sorting,
            Invocation::new(
                "s",
                Workload::Sort {
                    patches: 3600,
                    keys_per_patch: 256.0,
                    entry_bytes: 8,
                },
            ),
        ),
        (MicroOp::Gemm, gemm(1 << 18, 64, 64)),
    ];
    for (op, inv) in invs {
        let report = accel.simulate(&trace_of(vec![inv]));
        assert!(report.cycles > 0, "{op} simulates");
        assert_eq!(report.per_op_cycles.len(), 1);
        assert!(report.per_op_cycles.contains_key(&op));
    }
}
