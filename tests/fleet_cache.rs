//! The scene-cache contract: eviction is a *schedule* fact.
//!
//! The fleet's cache evicts by least-recently-delivered fleet slot —
//! never wall clock — so (1) replaying the same admission/drain
//! sequence reproduces the same evictions, bakes, and bits at any
//! worker count; (2) an evicted scene rebakes bit-identically (baking
//! is seeded purely from the spec), so evict-then-rebake round-trips
//! the served stream exactly; and (3) every cache counter is
//! predictable by a manual replay of the routing decisions.
//!
//! Every test takes `common::env_lock` because they pin the
//! process-wide worker count.

use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, OnceLock};
use uni_render::prelude::*;

mod common;
use common::{env_lock, fnv1a_image as frame_hash, renderer, with_threads};

const DETAIL: f32 = 0.02;
const CAPACITY: usize = 2;
const FRAMES_PER_WAVE: usize = 2;

/// Three distinct scenes over a capacity-2 cache: the third admission
/// must evict.
fn spec(scene: usize) -> SceneSpec {
    match scene {
        0 => SceneSpec::demo("fleet-cache-a", 711).with_detail(DETAIL),
        1 => SceneSpec::demo("fleet-cache-b", 712).with_detail(DETAIL),
        _ => SceneSpec::demo("fleet-cache-c", 713).with_detail(DETAIL),
    }
}

fn key(scene: usize) -> SceneKey {
    SceneKey::of(&spec(scene))
}

/// Resident bytes per scene, baked once — the model's bake-cost table.
fn scene_bytes(scene: usize) -> u64 {
    static BYTES: OnceLock<Vec<u64>> = OnceLock::new();
    BYTES.get_or_init(|| (0..3).map(|i| spec(i).bake().resident_bytes()).collect())[scene]
}

/// Each scene's wave always walks the same path, so a rebaked scene's
/// wave is comparable bit-for-bit with its first wave.
fn path(scene: usize) -> CameraPath {
    let orbit = spec(scene).orbit(16, 12);
    CameraPath::orbit_arc(orbit, 0.4 * scene as f32, 2.0, FRAMES_PER_WAVE)
}

fn request(scene: usize) -> FleetSessionRequest {
    FleetSessionRequest::new(move || renderer(scene), path(scene))
}

fn fleet() -> ServerFleet {
    ServerFleet::new(SceneCacheConfig {
        max_resident: CAPACITY,
        max_bytes: None,
    })
    .with_accelerator_config(AcceleratorConfig::paper())
    .with_lanes(2)
}

/// One wave: admit a session on `scene`, drain the fleet, return the
/// wave's delivered frame hashes (in path order).
fn run_wave(fleet: &mut ServerFleet, scene: usize) -> Vec<u64> {
    let handle = fleet.admit(&spec(scene), request(scene));
    let mut hashes = Vec::with_capacity(FRAMES_PER_WAVE);
    while let Some(frame) = fleet.next_frame() {
        assert_eq!(frame.handle, handle, "waves drain before the next admits");
        assert_eq!(frame.path_index, hashes.len());
        hashes.push(frame_hash(&frame.frame.report.image));
        fleet.recycle(frame.handle, frame.frame.report.image);
    }
    assert_eq!(hashes.len(), FRAMES_PER_WAVE);
    hashes
}

/// Runs a wave schedule on a fresh fleet: per-wave hashes + summary.
fn run_schedule(waves: &[usize]) -> (Vec<Vec<u64>>, FleetSummary) {
    let mut fleet = fleet();
    let hashes = waves.iter().map(|&s| run_wave(&mut fleet, s)).collect();
    (hashes, fleet.summary())
}

#[test]
fn eviction_is_a_pure_function_of_the_delivered_schedule() {
    let _guard = env_lock();
    // Capacity 2, scenes 0..3: wave 2 evicts scene 0 (least-recently-
    // delivered), the final wave rebakes scene 0 and evicts scene 1.
    let waves = [0usize, 1, 2, 0];
    let (hashes, summary) = with_threads("1", || run_schedule(&waves));
    let (replay_hashes, replay_summary) = with_threads("1", || run_schedule(&waves));
    assert_eq!(hashes, replay_hashes, "same schedule, same bits");
    assert_eq!(summary, replay_summary, "same schedule, same accounting");
    let (t4_hashes, t4_summary) = with_threads("4", || run_schedule(&waves));
    assert_eq!(hashes, t4_hashes, "worker count cannot move an eviction");
    assert_eq!(summary, t4_summary);

    assert!(summary.is_consistent());
    assert_eq!(summary.cache.bakes, 4);
    assert_eq!(summary.cache.rebakes, 1);
    assert_eq!(summary.cache.evictions, 2);
    assert_eq!(summary.cache.hits, 0);
    assert_eq!(summary.cache.resident_scenes, CAPACITY);
    // The evicted-and-rebaked scene served both its waves identically.
    assert_eq!(hashes[0], hashes[3], "rebake round-trips the stream");
    // Scene 0's shard served two residency generations, one session each.
    assert_eq!(summary.shards[0].generations(), 2);
    assert_eq!(summary.shards[0].sessions().count(), 2);
}

#[test]
fn evict_then_rebake_round_trips_bit_identically() {
    let _guard = env_lock();
    with_threads("1", || {
        // Standalone reference for scene 0's wave.
        let scene = Arc::new(spec(0).bake());
        let mut solo = RenderSession::new(scene, renderer(0), path(0));
        let mut reference = Vec::with_capacity(FRAMES_PER_WAVE);
        while let Some(frame) = solo.next_frame() {
            reference.push(frame_hash(&frame.image));
            solo.recycle(frame.image);
        }

        let mut fleet = fleet();
        let first = run_wave(&mut fleet, 0);
        run_wave(&mut fleet, 1);
        run_wave(&mut fleet, 2);
        assert_eq!(fleet.cache_stats().evictions, 1, "scene 0 evicted");
        let again = run_wave(&mut fleet, 0);
        let stats = fleet.cache_stats();
        assert_eq!(stats.rebakes, 1, "scene 0 rebaked");
        assert_eq!(first, reference, "first residency serves standalone bits");
        assert_eq!(again, reference, "rebaked residency serves the same bits");
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn bake_accounting_matches_a_manual_replay_of_routing_decisions(
        waves in proptest::collection::vec(0usize..3, 1..8),
    ) {
        let _guard = env_lock();
        let (stats, summary) = with_threads("1", || {
            let mut fleet = fleet();
            for &s in &waves {
                run_wave(&mut fleet, s);
            }
            (fleet.cache_stats(), fleet.summary())
        });

        // Manual replay: the cache contract, restated from the wave
        // schedule alone. Recency is the fleet's delivered-slot clock
        // (admits and deliveries both refresh it); eviction takes the
        // least-recently-delivered unpinned resident, ties by key order;
        // during an admission only the scene being admitted is pinned
        // (every previous wave has drained).
        let mut resident: BTreeMap<usize, u64> = BTreeMap::new();
        let mut ever: BTreeSet<usize> = BTreeSet::new();
        let mut expect = FleetCacheStats::default();
        let mut slot = 0u64;
        for &s in &waves {
            if resident.contains_key(&s) {
                expect.hits += 1;
            } else {
                expect.bakes += 1;
                expect.baked_bytes += scene_bytes(s);
                if !ever.insert(s) {
                    expect.rebakes += 1;
                }
                while resident.len() >= CAPACITY {
                    let victim = resident
                        .iter()
                        .map(|(&scene, &last)| (last, key(scene), scene))
                        .min()
                        .expect("a resident exists")
                        .2;
                    resident.remove(&victim);
                    expect.evictions += 1;
                }
            }
            resident.insert(s, slot);
            for _ in 0..FRAMES_PER_WAVE {
                slot += 1;
                resident.insert(s, slot);
            }
        }
        expect.resident_scenes = resident.len();
        expect.resident_bytes = resident.keys().map(|&s| scene_bytes(s)).sum();

        prop_assert_eq!(stats, expect);
        prop_assert!(summary.is_consistent());
        prop_assert_eq!(summary.delivered_frames, waves.len() * FRAMES_PER_WAVE);
        prop_assert_eq!(summary.delivered_frames, slot as usize);
    }
}
