//! Integration tests for the frame-stream engine: sessions over orbit /
//! lerp camera paths must reuse the framebuffer pool (stable pointer and
//! capacity after frame 1), report per-frame simulated performance, and
//! account reconfigurations amortized across the stream.

use std::sync::OnceLock;
use uni_render::prelude::*;

fn scene() -> &'static BakedScene {
    static SCENE: OnceLock<BakedScene> = OnceLock::new();
    SCENE.get_or_init(|| SceneSpec::demo("stream", 123).with_detail(0.03).bake())
}

fn orbit_path(frames: usize, w: u32, h: u32) -> CameraPath {
    CameraPath::orbit(scene().spec().orbit(w, h), frames)
}

/// A 4-frame orbit stream reuses the framebuffer: the pixel pointer and
/// capacity are stable across every frame after the first, and the pool
/// performs exactly one allocation.
#[test]
fn four_frame_orbit_stream_reuses_the_framebuffer() {
    let path = orbit_path(4, 64, 48);
    let mut session =
        RenderSession::new(scene().clone(), Box::new(GaussianPipeline::default()), path);
    let mut ptr_cap = None;
    let mut frames = 0;
    while let Some(frame) = session.next_frame() {
        assert_eq!((frame.image.width(), frame.image.height()), (64, 48));
        let here = (frame.image.pixels().as_ptr(), frame.image.capacity());
        if let Some(prev) = ptr_cap {
            assert_eq!(here, prev, "frame {}: pointer/capacity stable", frame.index);
        }
        ptr_cap = Some(here);
        frames += 1;
        session.recycle(frame.image);
    }
    assert_eq!(frames, 4);
    assert_eq!(session.summary().framebuffer_allocations, 1);
}

/// With an accelerator attached, every frame carries a trace and a
/// simulated report, and the stream summary aggregates them.
#[test]
fn simulated_stream_reports_per_frame_fps_and_amortized_reconfigurations() {
    let path = orbit_path(5, 48, 32);
    let mut session =
        RenderSession::new(scene().clone(), Box::new(GaussianPipeline::default()), path)
            .with_accelerator(Accelerator::new(AcceleratorConfig::paper()));
    let mut per_frame_reconfigs = 0;
    while let Some(frame) = session.next_frame() {
        let sim = frame.sim.as_ref().expect("simulated");
        assert!(sim.fps() > 0.0, "frame {} has a simulated fps", frame.index);
        assert!(frame.trace.is_some());
        per_frame_reconfigs += sim.reconfigurations;
        session.recycle(frame.image);
    }
    let summary = session.summary();
    assert_eq!(summary.frames, 5);
    assert_eq!(summary.in_frame_reconfigurations, per_frame_reconfigs);
    // 5 frames -> 4 boundaries, each either a switch or amortized away.
    assert_eq!(
        summary.boundary_reconfigurations + summary.boundary_switches_avoided,
        4
    );
    assert!(summary.mean_fps() > 0.0);
    assert!(summary.total_cycles > 0);
    // Amortized switches per frame can never exceed per-frame switches
    // plus one boundary each.
    assert!(summary.reconfigurations_per_frame() <= (per_frame_reconfigs as f64 / 5.0) + 1.0);
}

/// The same pipeline streamed frame to frame starts and ends each frame
/// in the same micro-op family, so a homogeneous stream amortizes every
/// boundary it can: boundary accounting must be deterministic across
/// runs.
#[test]
fn homogeneous_stream_boundary_accounting_is_deterministic() {
    let run = || {
        let mut session = RenderSession::new(
            scene().clone(),
            Box::new(HashGridPipeline::default()),
            orbit_path(3, 48, 32),
        )
        .with_accelerator(Accelerator::new(AcceleratorConfig::paper()));
        while let Some(frame) = session.next_frame() {
            session.recycle(frame.image);
        }
        let s = session.summary();
        (
            s.boundary_reconfigurations,
            s.boundary_switches_avoided,
            s.in_frame_reconfigurations,
        )
    };
    assert_eq!(run(), run());
}

/// Batch replay through `Accelerator::simulate_many` agrees with the
/// streamed per-frame replay.
#[test]
fn batch_replay_matches_streamed_replay() {
    let mut session = RenderSession::new(
        scene().clone(),
        Box::new(MeshPipeline::default()),
        orbit_path(3, 48, 32),
    )
    .with_accelerator(Accelerator::new(AcceleratorConfig::paper()));
    let batch = session.replay_path().expect("accelerator attached");
    assert_eq!(batch.len(), 3);
    let mut i = 0;
    while let Some(frame) = session.next_frame() {
        assert_eq!(
            frame.sim.as_ref().expect("simulated").cycles,
            batch[i].cycles,
            "frame {i}"
        );
        i += 1;
        session.recycle(frame.image);
    }
}

/// A stream whose resolution shrinks and then grows back stays on one
/// allocation (capacity is retained), while growing *past* the pooled
/// capacity mid-stream reallocates exactly once — and is counted.
#[test]
fn mid_stream_resolution_growth_is_counted_exactly_once() {
    let orbit = scene().spec().orbit(32, 24);
    let cam = |w: u32, h: u32, angle: f32| orbit.camera_at(angle).with_resolution(w, h);
    // 32x24 -> shrink to 16x12 -> grow back (free) -> grow past capacity.
    let path = CameraPath::waypoints(vec![
        cam(32, 24, 0.0),
        cam(16, 12, 0.3),
        cam(32, 24, 0.6),
        cam(64, 48, 0.9),
        cam(64, 48, 1.2),
    ]);
    let mut session = RenderSession::new(scene().clone(), Box::new(MeshPipeline::default()), path);
    let mut allocs_per_frame = Vec::new();
    while let Some(frame) = session.next_frame() {
        let camera = frame.camera;
        assert_eq!(
            (frame.image.width(), frame.image.height()),
            (camera.width, camera.height),
            "frame {} rendered at its camera's resolution",
            frame.index
        );
        allocs_per_frame.push(session.summary().framebuffer_allocations);
        session.recycle(frame.image);
    }
    // One cold allocation, free shrink-then-grow, then exactly one
    // counted reallocation when 64x48 exceeds the 32x24 capacity.
    assert_eq!(allocs_per_frame, vec![1, 1, 1, 2, 2]);
}

/// A lerp path streams frames whose cameras move from one pose to the
/// other; the session renders every one at the path resolution.
#[test]
fn lerp_path_streams_between_poses() {
    let orbit = scene().spec().orbit(40, 30);
    let path = CameraPath::lerp(orbit.camera_at(0.0), orbit.camera_at(1.2), 4);
    let mut session = RenderSession::new(scene().clone(), Box::new(MeshPipeline::default()), path);
    let first = session.next_frame().expect("frame 0");
    let eye0 = first.camera.eye;
    session.recycle(first.image);
    let mut last_eye = eye0;
    while let Some(frame) = session.next_frame() {
        last_eye = frame.camera.eye;
        session.recycle(frame.image);
    }
    assert!((eye0 - orbit.camera_at(0.0).eye).length() < 1e-6);
    assert!((last_eye - orbit.camera_at(1.2).eye).length() < 1e-6);
}
