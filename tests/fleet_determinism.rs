//! The fleet determinism contract: sharding, routing, and live
//! migration are *invisible* in the delivered bits.
//!
//! 1. Every session a [`ServerFleet`] serves delivers frames
//!    bit-identical to a standalone [`RenderSession`] walking the same
//!    path on the same scene — at `UNI_RENDER_THREADS` 1 and 4, with
//!    render/replay overlap on and off — and the [`FleetSummary`] is
//!    consistent and thread-invariant.
//! 2. A mid-serve [`ServerFleet::migrate`] yields a bit-identical
//!    permutation of the unmigrated stream: per-session delivery stays
//!    in path order with the exact standalone bits, only the
//!    cross-session interleaving changes. A session closed while its
//!    migration is staged cancels cleanly — the target shard never
//!    learns the session existed (no ghost slot in `sim_time_share`,
//!    the same regression shape PR 8 pinned for queued admits).
//!
//! Every test takes `common::env_lock` because they pin the
//! process-wide worker count.

use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use uni_render::prelude::*;

mod common;
use common::{env_lock, fnv1a_image as frame_hash, renderer, with_threads, RESOLUTIONS};

const DETAIL: f32 = 0.02;

/// The scene roster: up to four distinct scenes. The last two share a
/// bake seed but not a name — distinct [`SceneKey`]s over bit-identical
/// content, which is what makes a migration between them a pure
/// permutation.
fn spec(index: usize) -> SceneSpec {
    match index {
        0 => SceneSpec::demo("fleet-det-a", 901).with_detail(DETAIL),
        1 => SceneSpec::demo("fleet-det-b", 902).with_detail(DETAIL),
        2 => SceneSpec::demo("fleet-det-c", 903).with_detail(DETAIL),
        _ => SceneSpec::demo("fleet-det-c-twin", 903).with_detail(DETAIL),
    }
}

/// Standalone reference bakes, one per roster slot, baked once.
fn baked(index: usize) -> Arc<BakedScene> {
    static SCENES: OnceLock<Vec<Arc<BakedScene>>> = OnceLock::new();
    Arc::clone(&SCENES.get_or_init(|| (0..4).map(|i| Arc::new(spec(i).bake())).collect())[index])
}

/// One generated session: scene, pipeline, frame count, resolution.
#[derive(Debug, Clone, Copy)]
struct Mix {
    scene: usize,
    pipeline: usize,
    frames: usize,
    resolution: (u32, u32),
}

/// Each session orbits from its own start angle, deterministically per
/// fleet session id.
fn path_for(session: usize, mix: Mix) -> CameraPath {
    let (w, h) = mix.resolution;
    let orbit = spec(mix.scene).orbit(w, h);
    CameraPath::orbit_arc(orbit, 0.7 * session as f32, 2.0, mix.frames)
}

fn request_for(session: usize, mix: Mix) -> FleetSessionRequest {
    let pipeline = mix.pipeline;
    FleetSessionRequest::new(move || renderer(pipeline), path_for(session, mix))
}

/// Renders every session standalone: per-session, per-frame hashes.
fn standalone_hashes(mixes: &[Mix]) -> Vec<Vec<u64>> {
    mixes
        .iter()
        .enumerate()
        .map(|(id, &mix)| {
            let mut session =
                RenderSession::new(baked(mix.scene), renderer(mix.pipeline), path_for(id, mix));
            let mut hashes = Vec::with_capacity(mix.frames);
            while let Some(frame) = session.next_frame() {
                hashes.push(frame_hash(&frame.image));
                session.recycle(frame.image);
            }
            hashes
        })
        .collect()
}

fn fleet_for(overlap: bool) -> ServerFleet {
    ServerFleet::new(SceneCacheConfig::default())
        .with_accelerator_config(AcceleratorConfig::paper())
        .with_lanes(4)
        .with_overlap(overlap)
}

/// Serves every session through a fleet (one shard per scene): hashes
/// indexed per session in path order, plus the end-of-run summary.
fn fleet_hashes(mixes: &[Mix], overlap: bool) -> (Vec<Vec<u64>>, FleetSummary) {
    let mut fleet = fleet_for(overlap);
    for (id, &mix) in mixes.iter().enumerate() {
        let handle = fleet.admit(&spec(mix.scene), request_for(id, mix));
        assert_eq!(handle.id(), id, "fleet handles are dense");
    }
    let mut hashes: Vec<Vec<u64>> = mixes.iter().map(|m| Vec::with_capacity(m.frames)).collect();
    while let Some(frame) = fleet.next_frame() {
        let id = frame.handle.id();
        assert_eq!(
            hashes[id].len(),
            frame.path_index,
            "frames of one session arrive in path order"
        );
        hashes[id].push(frame_hash(&frame.frame.report.image));
        fleet.recycle(frame.handle, frame.frame.report.image);
    }
    (hashes, fleet.summary())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]
    #[test]
    fn fleet_streams_are_bit_identical_to_standalone_sessions(
        scene_count in 2usize..5,
        raw in proptest::collection::vec((0usize..6, 1usize..3, 0usize..3, 0usize..8), 1..9),
    ) {
        let _guard = env_lock();
        let mixes: Vec<Mix> = raw
            .iter()
            .map(|&(pipeline, frames, res, scene)| Mix {
                scene: scene % scene_count,
                pipeline,
                frames,
                resolution: RESOLUTIONS[res],
            })
            .collect();
        let solo = with_threads("1", || standalone_hashes(&mixes));
        let total: usize = mixes.iter().map(|m| m.frames).sum();

        let mut reference: Option<(Vec<Vec<u64>>, FleetSummary)> = None;
        for overlap in [false, true] {
            for threads in ["1", "4"] {
                let (served, summary) =
                    with_threads(threads, || fleet_hashes(&mixes, overlap));
                prop_assert_eq!(&served, &solo);
                prop_assert!(summary.is_consistent());
                prop_assert_eq!(summary.delivered_frames, total);
                prop_assert_eq!(summary.cache.evictions, 0);
                // Neither worker count nor overlap may change a single
                // delivered bit or accounting fact.
                if let Some((ref_hashes, ref_summary)) = &reference {
                    prop_assert_eq!(ref_hashes, &served);
                    prop_assert_eq!(ref_summary, &summary);
                } else {
                    reference = Some((served, summary));
                }
            }
        }
    }
}

/// Serves `mixes`, migrating `victim` from roster slot 2 to its twin
/// (slot 3) after `migrate_after` delivered fleet frames. Returns
/// per-session hashes (in original path-index order) and the summary.
fn fleet_hashes_with_migration(
    mixes: &[Mix],
    victim: usize,
    migrate_after: usize,
    cancel: bool,
) -> (Vec<Vec<u64>>, FleetSummary) {
    let mut fleet = fleet_for(false).with_lookahead(2);
    let mut handles = Vec::with_capacity(mixes.len());
    for (id, &mix) in mixes.iter().enumerate() {
        handles.push(fleet.admit(&spec(mix.scene), request_for(id, mix)));
    }
    let mut hashes: Vec<Vec<u64>> = mixes.iter().map(|m| Vec::with_capacity(m.frames)).collect();
    let mut staged = false;
    let pump = |fleet: &mut ServerFleet, hashes: &mut Vec<Vec<u64>>| -> bool {
        let Some(frame) = fleet.next_frame() else {
            return false;
        };
        let id = frame.handle.id();
        assert_eq!(
            hashes[id].len(),
            frame.path_index,
            "path order survives migration"
        );
        hashes[id].push(frame_hash(&frame.frame.report.image));
        fleet.recycle(frame.handle, frame.frame.report.image);
        true
    };
    for _ in 0..migrate_after {
        if !pump(&mut fleet, &mut hashes) {
            break;
        }
    }
    if fleet.migrate(handles[victim], &spec(3)) {
        staged = true;
        if cancel {
            assert!(
                fleet.close(handles[victim]),
                "closing a staged migration cancels it"
            );
        }
    }
    while pump(&mut fleet, &mut hashes) {}
    let summary = fleet.summary();
    if staged {
        assert_eq!(summary.migrations, 1);
        if cancel {
            assert_eq!(summary.migrations_cancelled, 1);
        } else {
            assert_eq!(
                summary.migrations_completed + summary.migrations_refused,
                1,
                "a staged migration resolves"
            );
        }
    }
    (hashes, summary)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]
    #[test]
    fn migration_churn_is_a_bit_identical_permutation(
        raw in proptest::collection::vec((0usize..6, 4usize..7, 0usize..3), 1..5),
        victim_pick in 0usize..8,
        migrate_after in 1usize..4,
    ) {
        let _guard = env_lock();
        // Every session lives on roster slot 2 so any of them can
        // migrate to the twin scene (slot 3) — bit-identical content
        // under a different scene key.
        let mixes: Vec<Mix> = raw
            .iter()
            .map(|&(pipeline, frames, res)| Mix {
                scene: 2,
                pipeline,
                frames,
                resolution: RESOLUTIONS[res],
            })
            .collect();
        let victim = victim_pick % mixes.len();
        let solo = with_threads("1", || standalone_hashes(&mixes));

        let mut reference: Option<(Vec<Vec<u64>>, FleetSummary)> = None;
        for threads in ["1", "4"] {
            let (served, summary) = with_threads(threads, || {
                fleet_hashes_with_migration(&mixes, victim, migrate_after, false)
            });
            // Per-session streams carry the standalone bits in path
            // order; the migration only permutes the fleet interleaving.
            prop_assert_eq!(&served, &solo);
            prop_assert!(summary.is_consistent());
            if let Some((ref_hashes, ref_summary)) = &reference {
                prop_assert_eq!(ref_hashes, &served);
                prop_assert_eq!(ref_summary, &summary);
            } else {
                reference = Some((served, summary));
            }
        }
    }
}

#[test]
fn mid_serve_migration_hands_off_a_real_suffix() {
    let _guard = env_lock();
    with_threads("1", || {
        let mixes = [Mix {
            scene: 2,
            pipeline: 0,
            frames: 8,
            resolution: RESOLUTIONS[0],
        }];
        let solo = standalone_hashes(&mixes);
        let (served, summary) = fleet_hashes_with_migration(&mixes, 0, 2, false);
        assert_eq!(served, solo, "handed-off stream is bit-identical");
        assert!(summary.is_consistent());
        assert_eq!(summary.migrations, 1);
        assert_eq!(summary.migrations_completed, 1);
        // The hand-off was real: the twin shard delivered a non-empty
        // suffix, the source the complementary prefix — together the
        // whole path.
        let source = &summary.shards[0];
        let target = &summary.shards[1];
        assert_eq!(target.scene, SceneKey::of(&spec(3)).as_str());
        assert!(
            target.scheduled_frames() > 0,
            "suffix re-admitted on target"
        );
        assert!(source.scheduled_frames() > 0, "prefix delivered on source");
        assert_eq!(source.scheduled_frames() + target.scheduled_frames(), 8);
        // Admission spanned shards through try_admit: the target shard
        // admitted exactly one session.
        assert_eq!(target.sessions().count(), 1);
    });
}

#[test]
fn closing_a_staged_migration_cancels_without_a_ghost_slot() {
    let _guard = env_lock();
    with_threads("1", || {
        let mixes = [
            Mix {
                scene: 2,
                pipeline: 0,
                frames: 8,
                resolution: RESOLUTIONS[0],
            },
            Mix {
                scene: 2,
                pipeline: 1,
                frames: 4,
                resolution: RESOLUTIONS[1],
            },
        ];
        let (served, summary) = fleet_hashes_with_migration(&mixes, 0, 2, true);
        assert!(summary.is_consistent());
        assert_eq!(summary.migrations, 1);
        assert_eq!(summary.migrations_cancelled, 1);
        assert_eq!(summary.migrations_completed, 0);
        // The close (staged by migrate) truncated the victim's stream;
        // the survivor delivered everything.
        assert!(served[0].len() < 8, "victim closed early");
        assert_eq!(served[1].len(), 4, "survivor unaffected");
        // No ghost slot: the target shard never learned the session
        // existed — no server generation, no per-session row, so no
        // entry in any sim_time_share either. Fleet-wide, exactly the
        // two admitted sessions have accounting rows.
        let target = &summary.shards[1];
        assert_eq!(target.scene, SceneKey::of(&spec(3)).as_str());
        assert_eq!(target.generations(), 0, "cancelled suffix never admitted");
        assert_eq!(target.sessions().count(), 0);
        assert_eq!(summary.session_count(), 2);
    });
}
