//! Regression tests for render/replay pipelining: with overlap on, a
//! [`RenderSession`] renders frame `N + 1` while frame `N`'s dataflow
//! replay simulates on a dedicated lane, and a [`RenderServer`] splits
//! every scheduled frame into a render stage and a replay stage on
//! separate lane pools. Neither form of overlap may change a single
//! delivered bit: delivery and accounting are schedule-order facts, so
//! streams with overlap on must be identical — frames, traces, reports,
//! and summaries — to the same streams with overlap off, at every lane
//! and thread count. CI runs this file at `UNI_RENDER_THREADS=1` and `4`.

use std::sync::{Arc, OnceLock};
use uni_render::prelude::*;

fn scene() -> &'static Arc<BakedScene> {
    static SCENE: OnceLock<Arc<BakedScene>> = OnceLock::new();
    SCENE.get_or_init(|| Arc::new(SceneSpec::demo("overlap", 321).with_detail(0.03).bake()))
}

fn orbit_path(frames: usize, w: u32, h: u32) -> CameraPath {
    CameraPath::orbit(scene().spec().orbit(w, h), frames)
}

/// Everything observable about one delivered session frame.
type SessionFrame = (usize, Image, u64, u64, bool);

fn stream_session(overlap: bool) -> (Vec<SessionFrame>, StreamSummary) {
    let mut session = RenderSession::new(
        Arc::clone(scene()),
        Box::new(GaussianPipeline::default()),
        orbit_path(5, 48, 36),
    )
    .with_accelerator(Accelerator::new(AcceleratorConfig::paper()))
    .with_overlap(overlap);
    let mut frames = Vec::new();
    while let Some(frame) = session.next_frame() {
        let sim = frame.sim.as_ref().expect("simulated");
        frames.push((
            frame.index,
            frame.image.clone(),
            sim.cycles,
            sim.reconfigurations,
            frame.boundary_reconfiguration,
        ));
        session.recycle(frame.image);
    }
    (frames, session.summary())
}

#[test]
fn overlapped_session_stream_is_bit_identical_to_serial() {
    let (on_frames, on_summary) = stream_session(true);
    let (off_frames, off_summary) = stream_session(false);
    assert_eq!(on_frames, off_frames, "delivered frames must not change");
    // Every summary fact matches except the framebuffer count: the
    // pipelined stream intentionally double-buffers (one frame in hand,
    // one prefetched), the serial stream stays single-buffered.
    let mut on_normalized = on_summary;
    on_normalized.framebuffer_allocations = off_summary.framebuffer_allocations;
    assert_eq!(on_normalized, off_summary, "accounting must not change");
    assert_eq!(off_summary.framebuffer_allocations, 1);
    assert_eq!(on_summary.framebuffer_allocations, 2);
}

/// Everything observable about one served frame.
type ServedRecord = (usize, usize, Image, u64, bool, Option<u64>);

fn serve(overlap: bool, lanes: usize) -> (Vec<ServedRecord>, ServerSummary) {
    let mut server = RenderServer::new(Arc::clone(scene()))
        .with_accelerator(Accelerator::new(AcceleratorConfig::paper()))
        .with_lanes(lanes)
        .with_overlap(overlap)
        .with_policy(EarliestDeadline::new());
    server.admit(
        SessionRequest::new(Box::new(MeshPipeline::default()), orbit_path(3, 40, 30))
            .deadline_hz(30.0),
    );
    server.admit(
        SessionRequest::new(Box::new(MlpPipeline::default()), orbit_path(3, 24, 18))
            .deadline_hz(60.0),
    );
    server.admit(SessionRequest::new(
        Box::new(GaussianPipeline::default()),
        orbit_path(3, 40, 30),
    ));
    let mut frames = Vec::new();
    while let Some(frame) = server.next_frame() {
        let sim = frame.report.sim.as_ref().expect("simulated");
        frames.push((
            frame.session,
            frame.report.index,
            frame.report.image.clone(),
            sim.cycles,
            frame.report.boundary_reconfiguration,
            // Slack is an f64 sim-time fact; compare exact bits.
            frame.deadline_slack.map(f64::to_bits),
        ));
        server.recycle(frame.session, frame.report.image);
    }
    (frames, server.summary())
}

#[test]
fn overlapped_server_is_bit_identical_to_serial_at_one_lane() {
    assert_eq!(serve(true, 1), serve(false, 1));
}

#[test]
fn overlapped_server_is_bit_identical_to_serial_at_four_lanes() {
    assert_eq!(serve(true, 4), serve(false, 4));
}

#[test]
fn overlapped_server_is_lane_count_invariant() {
    assert_eq!(serve(true, 1), serve(true, 4));
}
