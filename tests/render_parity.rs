//! Parity tests for the render hot-path overhaul: the SoA +
//! counting-sort + band-parallel production paths must reproduce the
//! seed-era scalar reference within 1e-5 per channel for all six
//! pipelines, the reusable-target entry point `render_into` must be
//! bit-identical to `render` (it *is* the same path, writing into a
//! caller-owned buffer), and the global counting sort must order
//! (tile, depth) pairs exactly like the comparison sort it replaced.

use proptest::prelude::*;
use std::sync::OnceLock;
use uni_render::geometry::sampling::XorShift64;
use uni_render::prelude::*;
use uni_render::renderers::gaussian_pipeline::{depth_key, sort_pairs_by_tile_and_depth};
use uni_render::scene::nn::Layer;
use uni_render::scene::Activation;

fn scene() -> &'static BakedScene {
    static SCENE: OnceLock<BakedScene> = OnceLock::new();
    SCENE.get_or_init(|| SceneSpec::demo("parity", 77).with_detail(0.03).bake())
}

fn camera() -> Camera {
    scene().orbit().camera_at(0.8).with_resolution(96, 72)
}

#[track_caller]
fn assert_images_close(optimized: &Image, scalar: &Image, pipeline: &str) {
    assert_eq!(
        (optimized.width(), optimized.height()),
        (scalar.width(), scalar.height()),
        "{pipeline}: dimensions"
    );
    for (i, (a, b)) in optimized.pixels().iter().zip(scalar.pixels()).enumerate() {
        assert!(
            (a.r - b.r).abs() < 1e-5 && (a.g - b.g).abs() < 1e-5 && (a.b - b.b).abs() < 1e-5,
            "{pipeline}: pixel {i} diverged: optimized {a} vs scalar {b}"
        );
    }
}

#[test]
fn gaussian_soa_counting_sort_path_matches_scalar() {
    let p = GaussianPipeline::default();
    assert_images_close(
        &p.render(scene(), &camera()),
        &p.render_scalar(scene(), &camera()),
        "gaussian",
    );
}

#[test]
fn hashgrid_band_path_matches_scalar() {
    let p = HashGridPipeline::default();
    assert_images_close(
        &p.render(scene(), &camera()),
        &p.render_scalar(scene(), &camera()),
        "hashgrid",
    );
}

#[test]
fn mlp_band_path_matches_scalar() {
    let p = MlpPipeline::default();
    assert_images_close(
        &p.render(scene(), &camera()),
        &p.render_scalar(scene(), &camera()),
        "mlp",
    );
}

#[test]
fn lowrank_band_path_matches_scalar() {
    let p = LowRankPipeline::default();
    assert_images_close(
        &p.render(scene(), &camera()),
        &p.render_scalar(scene(), &camera()),
        "lowrank",
    );
}

#[test]
fn mesh_band_raster_matches_scalar() {
    let p = MeshPipeline::default();
    assert_images_close(
        &p.render(scene(), &camera()),
        &p.render_scalar(scene(), &camera()),
        "mesh",
    );
}

#[test]
fn hybrid_band_path_matches_scalar() {
    let p = MixRtPipeline::default();
    assert_images_close(
        &p.render(scene(), &camera()),
        &p.render_scalar(scene(), &camera()),
        "hybrid",
    );
}

/// `render_into` writes the same pixels as `render` for every pipeline
/// (bit-identical — both run the same production path), into a target
/// whose allocation is reused across frames, and stays within 1e-5 of
/// the seed-era scalar reference.
#[test]
fn render_into_matches_render_and_scalar_for_all_pipelines() {
    let renderers: Vec<(Box<dyn Renderer>, &str)> = vec![
        (Box::new(MeshPipeline::default()), "mesh"),
        (Box::new(MlpPipeline::default()), "mlp"),
        (Box::new(LowRankPipeline::default()), "lowrank"),
        (Box::new(HashGridPipeline::default()), "hashgrid"),
        (Box::new(GaussianPipeline::default()), "gaussian"),
        (Box::new(MixRtPipeline::default()), "hybrid"),
    ];
    // One shared target across all pipelines: render_into must fully
    // overwrite whatever the previous pipeline left behind.
    let mut target = Image::new(8, 8, Rgb::WHITE);
    for (renderer, name) in &renderers {
        let fresh = renderer.render(scene(), &camera());
        renderer.render_into(scene(), &camera(), &mut target);
        assert_eq!(
            (target.width(), target.height()),
            (fresh.width(), fresh.height()),
            "{name}: target resized to the camera resolution"
        );
        assert_eq!(
            target.pixels(),
            fresh.pixels(),
            "{name}: render_into must be bit-identical to render"
        );
    }
    // Scalar agreement through the reused target, same 1e-5 budget as
    // the per-pipeline parity tests above.
    for (renderer, name) in &renderers {
        renderer.render_into(scene(), &camera(), &mut target);
        let scalar = match *name {
            "mesh" => MeshPipeline::default().render_scalar(scene(), &camera()),
            "mlp" => MlpPipeline::default().render_scalar(scene(), &camera()),
            "lowrank" => LowRankPipeline::default().render_scalar(scene(), &camera()),
            "hashgrid" => HashGridPipeline::default().render_scalar(scene(), &camera()),
            "gaussian" => GaussianPipeline::default().render_scalar(scene(), &camera()),
            _ => MixRtPipeline::default().render_scalar(scene(), &camera()),
        };
        assert_images_close(&target, &scalar, name);
    }
}

/// Rendering repeatedly into one target reuses its allocation: after the
/// first frame at a resolution, no pixel-buffer reallocation occurs.
#[test]
fn render_into_reuses_the_target_allocation() {
    let renderer = MeshPipeline::default();
    let mut target = Image::empty();
    renderer.render_into(scene(), &camera(), &mut target);
    let cap = target.capacity();
    let ptr = target.pixels().as_ptr();
    for _ in 0..3 {
        renderer.render_into(scene(), &camera(), &mut target);
        assert_eq!(target.capacity(), cap, "capacity stable across frames");
        assert_eq!(target.pixels().as_ptr(), ptr, "buffer pointer stable");
    }
}

proptest! {
    /// The global counting sort orders (tile, depth-key) pairs exactly
    /// like the seed's per-patch stable comparison sort: grouped by tile,
    /// by `f32::total_cmp` on depth within a tile, ties in original
    /// (splat) order.
    #[test]
    fn prop_counting_sort_matches_comparison_sort(
        pairs in proptest::collection::vec((0u32..64, 0u32..512), 0..400),
    ) {
        let n_tiles = 64u32;
        // Quantized depths provoke plenty of exact ties; negative and
        // subnormal-ish values exercise the total_cmp key mapping.
        let depths: Vec<f32> = pairs.iter().map(|&(_, d)| d as f32 * 0.25 - 40.0).collect();
        let mut keys: Vec<u64> = pairs
            .iter()
            .zip(&depths)
            .map(|(&(tile, _), &d)| (u64::from(tile) << 32) | u64::from(depth_key(d)))
            .collect();
        let mut ids: Vec<u32> = (0..pairs.len() as u32).collect();

        // Reference: the ordering the seed's per-patch sort produced.
        let mut reference: Vec<u32> = ids.clone();
        reference.sort_by(|&x, &y| {
            let (tx, dx) = (pairs[x as usize].0, depths[x as usize]);
            let (ty, dy) = (pairs[y as usize].0, depths[y as usize]);
            tx.cmp(&ty).then(dx.total_cmp(&dy))
        });

        let (mut keys_tmp, mut ids_tmp, mut hist) = (Vec::new(), Vec::new(), Vec::new());
        sort_pairs_by_tile_and_depth(
            &mut keys,
            &mut ids,
            &mut keys_tmp,
            &mut ids_tmp,
            &mut hist,
            n_tiles,
        );
        prop_assert_eq!(ids, reference);
        prop_assert!(keys.windows(2).all(|w| w[0] <= w[1]), "keys sorted");
    }

    /// The depth key is a strictly order-preserving embedding of
    /// `f32::total_cmp`.
    #[test]
    fn prop_depth_key_orders_like_total_cmp(a in -1000f32..1000.0, b in -1000f32..1000.0) {
        prop_assert_eq!(depth_key(a).cmp(&depth_key(b)), a.total_cmp(&b));
    }

    /// The wide (8-output panel) gemm microkernel agrees with the
    /// seed-era scalar row dot within 1e-5 for arbitrary layer shapes —
    /// crucially including widths that are *not* multiples of the 8-lane
    /// panel, where the kernel's tail masking and odd-`in_dim` remainder
    /// column both engage — and is bit-stable across repeated runs (the
    /// reduction order is fixed, so two evaluations of the same layer on
    /// the same input produce identical bits).
    #[test]
    fn prop_wide_gemm_matches_scalar_dot_for_random_shapes(
        in_dim in 1usize..48,
        out_dim in 1usize..48,
        act in 0u8..3,
        seed in 1u64..1_000_000,
    ) {
        let activation = match act {
            0 => Activation::Linear,
            1 => Activation::Relu,
            _ => Activation::Sigmoid,
        };
        let mut rng = XorShift64::new(seed);
        let layer = Layer::random(in_dim, out_dim, activation, &mut rng);
        let x: Vec<f32> = (0..in_dim).map(|_| rng.next_f32() * 4.0 - 2.0).collect();

        let mut wide = vec![0.0f32; out_dim];
        let mut scalar = vec![0.0f32; out_dim];
        layer.forward_into(&x, &mut wide);
        layer.forward_into_scalar(&x, &mut scalar);
        for (o, (a, b)) in wide.iter().zip(&scalar).enumerate() {
            prop_assert!(
                (a - b).abs() < 1e-5,
                "({in_dim}x{out_dim}) output {o}: wide {a} vs scalar {b}"
            );
        }

        let mut again = vec![0.0f32; out_dim];
        layer.forward_into(&x, &mut again);
        let first: Vec<u32> = wide.iter().map(|v| v.to_bits()).collect();
        let second: Vec<u32> = again.iter().map(|v| v.to_bits()).collect();
        // Bit-stability across repeated runs of the wide kernel.
        prop_assert_eq!(first, second);
    }
}
