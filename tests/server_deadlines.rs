//! The deadline contract of [`RenderServer`] scheduling:
//!
//! - [`EarliestDeadline`] served streams are a **bit-identical
//!   permutation** of the round-robin stream (each session's frames
//!   arrive complete, in path order, matching a standalone
//!   [`RenderSession`]) and **thread-invariant** at
//!   `UNI_RENDER_THREADS ∈ {1, 4}` — and so are [`CostAware`] streams;
//! - EDF never misses a deadline round-robin meets on the same
//!   workload (deadlines are sim-time facts, so this is a property of
//!   the schedule, not of lane timing);
//! - per-session miss counts and worst slack equal a **manual replay**
//!   of the delivered schedule;
//! - mid-serve churn under the deadline-aware policies stays
//!   bit-deterministic across thread counts.
//!
//! Every test mutates the process-wide `UNI_RENDER_THREADS` variable, so
//! they all serialize on one lock.

use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use uni_render::prelude::*;

mod common;
use common::{env_lock, fnv1a_image as frame_hash, renderer, with_threads, RESOLUTIONS};

/// Delivery order, per-session frame hashes, per-frame delivered slack
/// (delivery order), and final summary of one served run.
type ServedRun = (
    Vec<(usize, usize)>,
    Vec<Vec<u64>>,
    Vec<(usize, usize, Option<f64>)>,
    ServerSummary,
);

fn scene() -> Arc<BakedScene> {
    static SCENE: OnceLock<Arc<BakedScene>> = OnceLock::new();
    Arc::clone(SCENE.get_or_init(|| {
        Arc::new(
            SceneSpec::demo("serve-deadlines", 77)
                .with_detail(0.03)
                .bake(),
        )
    }))
}

/// One generated session: pipeline choice, frame count, resolution, and
/// a deadline period expressed as a multiple of the workload's mean
/// per-round sim time (`None` = best-effort).
#[derive(Debug, Clone, Copy)]
struct Mix {
    pipeline: usize,
    frames: usize,
    resolution: (u32, u32),
    deadline_scale: Option<f64>,
}

fn path_for(session: usize, mix: Mix) -> CameraPath {
    let (w, h) = mix.resolution;
    let orbit = scene().spec().orbit(w, h);
    CameraPath::orbit_arc(orbit, 0.7 * session as f32, 2.2, mix.frames)
}

/// Mean simulated seconds of one *round* of the mix (one frame of every
/// session), measured by a calibration serve under round-robin with no
/// deadlines. Deterministic and thread-invariant, so every policy and
/// thread count derives identical deadline rates from it.
fn mean_round_seconds(mixes: &[Mix]) -> f64 {
    let mut server = RenderServer::new(scene())
        .with_accelerator(Accelerator::new(AcceleratorConfig::paper()))
        .with_lanes(2);
    for (id, &mix) in mixes.iter().enumerate() {
        server.admit(SessionRequest::new(
            renderer(mix.pipeline),
            path_for(id, mix),
        ));
    }
    let summary = server.run();
    let frames = summary.scheduled_frames.max(1);
    summary.total_seconds / frames as f64 * mixes.len() as f64
}

/// The deadline rate (frames per sim-second) a mix entry implies:
/// `deadline_scale` stretches the mean round time into the session's
/// per-frame period.
fn deadline_hz_for(mix: Mix, round_seconds: f64) -> Option<f64> {
    mix.deadline_scale
        .map(|scale| 1.0 / (scale * round_seconds).max(f64::MIN_POSITIVE))
}

fn request_for(id: usize, mix: Mix, round_seconds: f64) -> SessionRequest {
    let mut request = SessionRequest::new(renderer(mix.pipeline), path_for(id, mix))
        .weight(1 + (id % 3) as u32)
        .priority((id % 2) as u8);
    if let Some(hz) = deadline_hz_for(mix, round_seconds) {
        request = request.deadline_hz(hz);
    }
    request
}

/// Renders every session standalone: per-session, per-frame hashes.
fn standalone_hashes(mixes: &[Mix]) -> Vec<Vec<u64>> {
    mixes
        .iter()
        .enumerate()
        .map(|(id, &mix)| {
            let mut session =
                RenderSession::new(scene(), renderer(mix.pipeline), path_for(id, mix));
            let mut hashes = Vec::with_capacity(mix.frames);
            while let Some(frame) = session.next_frame() {
                hashes.push(frame_hash(&frame.image));
                session.recycle(frame.image);
            }
            hashes
        })
        .collect()
}

/// Serves every session through one server under `policy`.
fn served(
    mixes: &[Mix],
    policy: Box<dyn SchedulePolicy>,
    lanes: usize,
    round_seconds: f64,
) -> ServedRun {
    let mut server = RenderServer::new(scene())
        .with_accelerator(Accelerator::new(AcceleratorConfig::paper()))
        .with_policy(policy)
        .with_lanes(lanes);
    for (id, &mix) in mixes.iter().enumerate() {
        server.admit(request_for(id, mix, round_seconds));
    }
    let mut order = Vec::new();
    let mut slacks = Vec::new();
    let mut hashes: Vec<Vec<u64>> = mixes.iter().map(|m| Vec::with_capacity(m.frames)).collect();
    while let Some(frame) = server.next_frame() {
        assert_eq!(
            hashes[frame.session].len(),
            frame.report.index,
            "frames of one session arrive in path order"
        );
        order.push((frame.session, frame.report.index));
        slacks.push((frame.session, frame.report.index, frame.deadline_slack));
        hashes[frame.session].push(frame_hash(&frame.report.image));
        server.recycle(frame.session, frame.report.image);
    }
    (order, hashes, slacks, server.summary())
}

fn mixes_from(raw: &[(usize, usize, usize, usize)]) -> Vec<Mix> {
    raw.iter()
        .map(|&(pipeline, frames, res, scale)| Mix {
            pipeline,
            frames,
            resolution: RESOLUTIONS[res],
            // scale 0 = best-effort; 1..4 = deadline periods from a
            // tight one round to a loose three rounds.
            deadline_scale: match scale {
                0 => None,
                s => Some(s as f64),
            },
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]
    #[test]
    fn deadline_policies_serve_bit_identical_permutations_of_round_robin(
        raw in proptest::collection::vec((0usize..6, 1usize..3, 0usize..3, 0usize..4), 1..5),
    ) {
        let _guard = env_lock();
        let mixes = mixes_from(&raw);
        let total: usize = mixes.iter().map(|m| m.frames).sum();
        let (solo, round_seconds) =
            with_threads("1", || (standalone_hashes(&mixes), mean_round_seconds(&mixes)));

        type Factory = fn() -> Box<dyn SchedulePolicy>;
        fn edf() -> Box<dyn SchedulePolicy> {
            Box::new(EarliestDeadline::new())
        }
        fn cost_aware() -> Box<dyn SchedulePolicy> {
            Box::new(CostAware::new())
        }
        let factories: [(&str, Factory); 2] =
            [("earliest_deadline", edf), ("cost_aware", cost_aware)];
        for (name, fresh) in factories {
            let mut reference: Option<ServedRun> = None;
            for threads in ["1", "4"] {
                let run = with_threads(threads, || served(&mixes, fresh(), 4, round_seconds));
                let (order, hashes, _, summary) = &run;
                // Permutation of the round-robin stream with
                // bit-identical frames: every session's stream is
                // complete, in path order, matching standalone.
                prop_assert!(hashes == &solo, "policy {} altered frames", name);
                prop_assert_eq!(order.len(), total);
                prop_assert!(summary.is_consistent());
                prop_assert_eq!(summary.scheduled_frames, total);
                prop_assert_eq!(&summary.policy, name);
                // Thread count changes nothing: schedule, images, slack
                // stream, miss accounting.
                if let Some(reference) = &reference {
                    prop_assert!(reference == &run, "policy {} is thread-variant", name);
                } else {
                    reference = Some(run);
                }
            }
        }
    }

    /// EDF dominance: on the same workload, EDF never misses a deadline
    /// the deadline-blind round-robin schedule meets. (Misses are
    /// schedule-order sim-time facts, so this is exactly a statement
    /// about the two schedules.)
    ///
    /// Non-preemptive EDF with order-dependent reconfiguration costs is
    /// not *provably* dominant on arbitrary workloads — this pins the
    /// property over the generated mixes, which the vendored proptest
    /// seeds deterministically from the test name, so the cases are
    /// fixed run over run (no CI flake surface). If a renderer-cost
    /// change surfaces a counterexample mix, that is signal about the
    /// schedule, not noise: inspect it before loosening the assertion.
    #[test]
    fn edf_never_misses_a_deadline_round_robin_meets(
        raw in proptest::collection::vec((0usize..6, 1usize..4, 0usize..3, 1usize..4), 2..5),
    ) {
        let _guard = env_lock();
        let mixes = mixes_from(&raw);
        let round_seconds = with_threads("1", || mean_round_seconds(&mixes));
        let (rr, edf) = with_threads("1", || {
            let rr = served(&mixes, Box::new(RoundRobin::new()), 2, round_seconds);
            let edf = served(
                &mixes,
                Box::new(EarliestDeadline::new()),
                2,
                round_seconds,
            );
            (rr, edf)
        });
        let met = |slacks: &[(usize, usize, Option<f64>)]| -> Vec<(usize, usize)> {
            slacks
                .iter()
                .filter(|(_, _, s)| s.is_some_and(|s| s >= 0.0))
                .map(|&(session, index, _)| (session, index))
                .collect()
        };
        let rr_met = met(&rr.2);
        let edf_met = met(&edf.2);
        for frame in &rr_met {
            prop_assert!(
                edf_met.contains(frame),
                "EDF missed {:?}, which round-robin met (rr misses {}, edf misses {})",
                frame,
                rr.3.deadline_misses,
                edf.3.deadline_misses
            );
        }
        // Dominance in aggregate follows from the per-frame subset.
        prop_assert!(edf.3.deadline_misses <= rr.3.deadline_misses);
    }
}

/// Per-session miss counts and worst slack equal a manual replay of the
/// delivered schedule: accumulate each delivered frame's charged sim
/// seconds (boundary reconfiguration plus simulated execution) in
/// delivery order and compare completion times against the periodic
/// deadlines.
#[test]
fn miss_accounting_equals_a_manual_schedule_replay() {
    let _guard = env_lock();
    with_threads("1", || {
        let mixes: Vec<Mix> = [(4usize, 1usize), (0, 2), (3, 1), (1, 0)]
            .iter()
            .map(|&(pipeline, scale)| Mix {
                pipeline,
                frames: 4,
                resolution: (24, 16),
                deadline_scale: (scale > 0).then_some(scale as f64),
            })
            .collect();
        let round_seconds = mean_round_seconds(&mixes);
        let periods: Vec<Option<f64>> = mixes
            .iter()
            .map(|&m| deadline_hz_for(m, round_seconds).map(f64::recip))
            .collect();

        let mut server = RenderServer::new(scene())
            .with_accelerator(Accelerator::new(AcceleratorConfig::paper()))
            .with_policy(EarliestDeadline::new())
            .with_lanes(2);
        for (id, &mix) in mixes.iter().enumerate() {
            server.admit(request_for(id, mix, round_seconds));
        }

        let reconfig_seconds = {
            let cfg = AcceleratorConfig::paper();
            cfg.cycles_to_seconds(cfg.reconfig_cycles)
        };
        let mut now = 0.0f64;
        let mut misses = vec![0u64; mixes.len()];
        let mut worst: Vec<Option<f64>> = vec![None; mixes.len()];
        let mut served_slacks = Vec::new();
        while let Some(frame) = server.next_frame() {
            // Replay the schedule's clock by hand from the delivered
            // facts: the boundary charge (if the frame reconfigured)
            // plus the frame's simulated seconds.
            if frame.report.boundary_reconfiguration {
                now += reconfig_seconds;
            }
            now += frame.report.sim.as_ref().expect("server simulates").seconds;
            if let Some(period) = periods[frame.session] {
                let due = (frame.report.index as f64 + 1.0) * period;
                let slack = due - now;
                if slack < 0.0 {
                    misses[frame.session] += 1;
                }
                worst[frame.session] = Some(match worst[frame.session] {
                    Some(w) => slack.min(w),
                    None => slack,
                });
                served_slacks.push((frame.session, slack));
                assert_eq!(
                    frame.deadline_slack,
                    Some(slack),
                    "delivered slack must equal the replayed clock"
                );
            } else {
                assert_eq!(
                    frame.deadline_slack, None,
                    "best-effort frames have no slack"
                );
            }
            server.recycle(frame.session, frame.report.image);
        }

        let summary = server.summary();
        assert!(summary.is_consistent());
        assert!(!served_slacks.is_empty());
        let mut total = 0;
        for stats in &summary.per_session {
            assert_eq!(
                stats.deadline_misses, misses[stats.session],
                "session {} miss count must equal the manual replay",
                stats.session
            );
            assert_eq!(
                stats.worst_slack, worst[stats.session],
                "session {} worst slack must equal the manual replay",
                stats.session
            );
            assert_eq!(
                stats.deadline_hz.is_some(),
                periods[stats.session].is_some(),
                "deadline rate survives into the stats"
            );
            // Latency percentiles exist exactly when frames were
            // simulated, and the tail cannot undercut the median.
            assert!(stats.latency_p50 > 0.0);
            assert!(stats.latency_p99 >= stats.latency_p50);
            total += stats.deadline_misses;
        }
        assert_eq!(summary.deadline_misses, total);
        let bound_frames: usize = summary
            .per_session
            .iter()
            .filter(|s| s.deadline_hz.is_some())
            .map(|s| s.frames)
            .sum();
        assert!((summary.deadline_miss_rate() - total as f64 / bound_frames as f64).abs() < 1e-12);
        assert_eq!(
            summary.worst_slack(),
            worst.iter().filter_map(|w| *w).min_by(f64::total_cmp),
            "aggregate worst slack is the per-session minimum"
        );
        assert!(summary.p99_sim_latency() > 0.0);
    });
}

/// Mid-serve admission and early close keep the served stream —
/// including every frame's delivered slack, bit for bit — identical
/// across thread counts. A session admitted mid-serve anchors its
/// deadline clock at the delivered sim-time its first frame starts
/// service (a delivery-order fact). The `RoundRobin` case is the
/// regression for the dispatch-time anchoring bug: under an
/// unbounded-in-flight policy the dispatch loop runs ahead of delivery
/// by up to the lane count, so reading the sim clock when the
/// activation slot is *dispatched* (instead of when the session first
/// *delivers*) produced lane-dependent epochs and thread-variant slack.
#[test]
fn deadline_churn_is_bit_deterministic_across_thread_counts() {
    let _guard = env_lock();
    let mixes: Vec<Mix> = (0..3)
        .map(|id| Mix {
            pipeline: id,
            frames: 5,
            resolution: (24, 16),
            deadline_scale: (id == 1).then_some(2.0),
        })
        .collect();
    let round_seconds = with_threads("1", || mean_round_seconds(&mixes));
    let churn =
        |threads: &str, lanes: usize, overlap: bool, fresh: fn() -> Box<dyn SchedulePolicy>| {
            with_threads(threads, || {
                let mut server = RenderServer::new(scene())
                    .with_accelerator(Accelerator::new(AcceleratorConfig::paper()))
                    .with_policy(fresh())
                    .with_lanes(lanes)
                    .with_overlap(overlap);
                let mut handles = Vec::new();
                for (id, &mix) in mixes.iter().enumerate() {
                    handles.push(server.admit(request_for(id, mix, round_seconds)));
                }
                let late_mix = Mix {
                    pipeline: 3,
                    frames: 3,
                    resolution: (16, 12),
                    deadline_scale: Some(1.5),
                };
                let mut stream = Vec::new();
                let mut late = None;
                while let Some(frame) = server.next_frame() {
                    stream.push((
                        frame.session,
                        frame.report.index,
                        frame_hash(&frame.report.image),
                        frame.deadline_slack.map(f64::to_bits),
                    ));
                    server.recycle(frame.session, frame.report.image);
                    if stream.len() == 3 {
                        late = Some(server.admit(request_for(3, late_mix, round_seconds)));
                    }
                    if stream.len() == 6 {
                        assert!(server.close(handles[2]), "open session closes");
                    }
                }
                let late = late.expect("admitted mid-serve");
                let summary = server.summary();
                assert!(summary.is_consistent());
                assert_eq!(summary.admissions, 1);
                assert_eq!(summary.closes, 1);
                assert_eq!(
                    summary.per_session[late.id()].frames,
                    late_mix.frames,
                    "late session served fully"
                );
                assert!(
                    summary.per_session[late.id()].worst_slack.is_some(),
                    "late session's deadline clock engaged at first delivery"
                );
                (stream, summary)
            })
        };
    for fresh in [
        (|| Box::new(EarliestDeadline::new()) as Box<dyn SchedulePolicy>) as fn() -> _,
        (|| Box::new(CostAware::new()) as Box<dyn SchedulePolicy>) as fn() -> _,
        // Unbounded in-flight: with several lanes the dispatch loop runs
        // ahead of delivery, the case that catches dispatch-anchored
        // deadline epochs.
        (|| Box::new(RoundRobin::new()) as Box<dyn SchedulePolicy>) as fn() -> _,
    ] {
        // 2 thread counts × overlap on/off: the mid-serve admit's
        // deadline epoch is anchored at first *delivery*, so the
        // render/replay pipelining must be bit-invisible to every
        // slack in the stream — the regression for a dispatch-order
        // epoch under `UNI_RENDER_OVERLAP=1`.
        let reference = churn("1", 1, false, fresh);
        for (threads, lanes, overlap) in [("1", 1, true), ("4", 4, false), ("4", 4, true)] {
            assert_eq!(
                reference,
                churn(threads, lanes, overlap, fresh),
                "churn timing must be lane-, thread-, and overlap-invariant \
                 (threads {threads}, overlap {overlap})"
            );
        }
    }
}
