//! Golden-frame regression harness: one 64×64 frame per pipeline,
//! FNV-1a-hashed over the raw f32 pixel buffer and pinned against
//! checked-in constants. Future perf PRs cannot silently change renderer
//! output — a hash mismatch here means the *image bytes* changed, not
//! just timing.
//!
//! Band parallelism is bit-exact by construction, so these hashes are
//! independent of `UNI_RENDER_THREADS`. If an intentional rendering
//! change lands, regenerate the constants with:
//!
//! ```sh
//! UNI_RENDER_BLESS=1 cargo test --test golden_frames -- --nocapture
//! ```
//!
//! and paste the printed `GOLDEN` table into this file.

use uni_render::prelude::*;

mod common;
use common::fnv1a_image as fnv1a;

/// Scene and camera every golden frame uses. Fixed forever — changing
/// either invalidates the constants.
const GOLDEN_SEED: u64 = 424242;
const GOLDEN_DETAIL: f32 = 0.05;
const GOLDEN_ANGLE: f32 = 0.8;
const GOLDEN_RES: (u32, u32) = (64, 64);

/// Checked-in frame hashes, in `all_renderers()` (Tab. I + hybrid) order.
///
/// Re-blessed once when the MLP forward pass moved to the 8-wide packed
/// gemm microkernel: its fixed panel-reduction order reassociates the
/// dot-product sums, which shifts training (and therefore every baked
/// MLP-bearing representation) by float-rounding amounts. The gaussian
/// frame — no MLP anywhere in its bake or render — was unchanged,
/// pinning the blast radius to exactly the reassociated kernel.
const GOLDEN: [(&str, u64); 6] = [
    ("mesh", 0x50aeef21408d5d1d),
    ("mlp", 0xbaa00b14f58ce1e6),
    ("lowrank", 0xd4aa9fa28d8d2587),
    ("hashgrid", 0xd072d3fa0ada7edf),
    ("gaussian", 0x3daad2f67e9fd6e7),
    ("mixrt", 0x70dfaa914076b3bb),
];

/// Checked-in hash of a whole *served schedule* under the [`Priority`]
/// policy: FNV-1a folded over every delivered `(session, index,
/// frame-hash)` triple in delivery order. Pins both the policy's
/// schedule (strict levels, round-robin within) and the frames it
/// delivers; re-bless together with `GOLDEN`.
const GOLDEN_PRIORITY_STREAM: u64 = 0xa042f556408f4926;

/// Checked-in hash of a served schedule under the [`EarliestDeadline`]
/// policy (same folding as `GOLDEN_PRIORITY_STREAM`): pins the EDF
/// order over three sessions with staggered sim-time deadline rates —
/// tightest first, best-effort last — and the frames it delivers.
/// Deadlines are sim-time facts, so the hash is thread-invariant;
/// re-bless together with `GOLDEN`.
const GOLDEN_EDF_STREAM: u64 = 0x6457e00dcf626652;

/// Checked-in hash of a whole *fleet* schedule under eviction pressure:
/// three scenes over a `max_resident = scenes - 1` cache, admitted in
/// waves so the third scene's bake evicts the least-recently-delivered
/// resident and the final wave rebakes it. Folds every delivered
/// `(fleet-session, path-index, frame-hash)` triple in delivery order —
/// pins the routing interleave, the eviction point, and the frames a
/// rebaked scene serves. Thread-invariant like every other golden;
/// re-bless together with `GOLDEN`.
const GOLDEN_FLEET_STREAM: u64 = 0x6167552f0ece5f93;

fn golden_frames() -> Vec<(String, u64)> {
    let spec = SceneSpec::demo("golden", GOLDEN_SEED).with_detail(GOLDEN_DETAIL);
    let scene = spec.bake();
    let camera = spec
        .orbit(GOLDEN_RES.0, GOLDEN_RES.1)
        .camera_at(GOLDEN_ANGLE);
    uni_render::renderers::all_renderers()
        .iter()
        .map(|renderer| {
            let image = renderer.render(&scene, &camera);
            assert_eq!((image.width(), image.height()), GOLDEN_RES);
            (renderer.pipeline().to_string(), fnv1a(&image))
        })
        .collect()
}

/// The camera path every golden served-stream session walks.
fn golden_path(spec: &SceneSpec) -> CameraPath {
    CameraPath::orbit_arc(spec.orbit(GOLDEN_RES.0, GOLDEN_RES.1), GOLDEN_ANGLE, 1.5, 2)
}

/// Drains a configured server and folds every delivered `(session,
/// index, frame-hash)` triple into one FNV-1a hash, in delivery order —
/// the encoding every golden served-stream constant pins.
fn served_stream_hash(mut server: RenderServer) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut fold = |value: u64| {
        for byte in value.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    while let Some(frame) = server.next_frame() {
        fold(frame.session as u64);
        fold(frame.report.index as u64);
        fold(fnv1a(&frame.report.image));
        server.recycle(frame.session, frame.report.image);
    }
    h
}

/// Serves the golden scene under the `Priority` policy — three sessions
/// at three levels, two frames each — and folds the delivery stream into
/// one hash.
fn priority_stream_hash() -> u64 {
    let spec = SceneSpec::demo("golden", GOLDEN_SEED).with_detail(GOLDEN_DETAIL);
    let scene = spec.bake();
    let mut server = RenderServer::new(scene)
        .with_policy(Priority::new())
        .with_lanes(2);
    let sessions: [(Box<dyn Renderer + Send>, u8); 3] = [
        (Box::new(MeshPipeline::default()), 1),
        (Box::new(HashGridPipeline::default()), 2),
        (Box::new(GaussianPipeline::default()), 0),
    ];
    for (renderer, priority) in sessions {
        server.admit(SessionRequest::new(renderer, golden_path(&spec)).priority(priority));
    }
    served_stream_hash(server)
}

/// Serves the golden scene under the `EarliestDeadline` policy — a
/// tight-deadline mesh stream, a looser hash-grid stream, and a
/// best-effort gaussian stream, two frames each — and folds the
/// delivery stream into one hash. The deadline rates are fixed
/// constants on the sim-time axis (the accelerator is the paper
/// config), so the schedule is as pinned as the frames.
fn edf_stream_hash() -> u64 {
    let spec = SceneSpec::demo("golden", GOLDEN_SEED).with_detail(GOLDEN_DETAIL);
    let scene = spec.bake();
    let mut server = RenderServer::new(scene)
        .with_accelerator(Accelerator::new(AcceleratorConfig::paper()))
        .with_policy(EarliestDeadline::new())
        .with_lanes(2);
    let sessions: [(Box<dyn Renderer + Send>, Option<f64>); 3] = [
        (Box::new(MeshPipeline::default()), Some(480.0)),
        (Box::new(HashGridPipeline::default()), Some(120.0)),
        (Box::new(GaussianPipeline::default()), None),
    ];
    for (renderer, deadline_hz) in sessions {
        let mut request = SessionRequest::new(renderer, golden_path(&spec));
        if let Some(hz) = deadline_hz {
            request = request.deadline_hz(hz);
        }
        server.admit(request);
    }
    served_stream_hash(server)
}

/// The golden fleet scene roster: the golden scene plus two siblings.
fn fleet_scene(index: usize) -> SceneSpec {
    let name = ["golden", "golden-b", "golden-c"][index];
    SceneSpec::demo(name, GOLDEN_SEED + index as u64).with_detail(GOLDEN_DETAIL)
}

/// Serves three scenes through a capacity-2 fleet in three waves —
/// mesh on scene 0 and hash-grid on scene 1 together, then gaussian on
/// scene 2 (evicting the least-recently-delivered resident), then mesh
/// on scene 0 again (rebaking it) — and folds the delivery stream into
/// one hash.
fn fleet_stream_hash() -> u64 {
    let mut fleet = ServerFleet::new(SceneCacheConfig {
        max_resident: 2,
        max_bytes: None,
    })
    .with_accelerator_config(AcceleratorConfig::paper())
    .with_lanes(2);
    let mut triples: Vec<(u64, u64, u64)> = Vec::new();
    let drain = |fleet: &mut ServerFleet, out: &mut Vec<(u64, u64, u64)>| {
        while let Some(frame) = fleet.next_frame() {
            out.push((
                frame.handle.id() as u64,
                frame.path_index as u64,
                fnv1a(&frame.frame.report.image),
            ));
            fleet.recycle(frame.handle, frame.frame.report.image);
        }
    };
    // (scene, pipeline index per `common::renderer`): mesh on scene 0
    // and hash-grid on scene 1 together, gaussian on scene 2, mesh back
    // on scene 0.
    let waves: [&[(usize, usize)]; 3] = [&[(0, 0), (1, 3)], &[(2, 4)], &[(0, 0)]];
    for wave in waves {
        for &(scene, pipeline) in wave {
            let spec = fleet_scene(scene);
            let path = golden_path(&spec);
            fleet.admit(
                &spec,
                FleetSessionRequest::new(move || common::renderer(pipeline), path),
            );
        }
        drain(&mut fleet, &mut triples);
    }
    let stats = fleet.cache_stats();
    assert!(stats.evictions >= 1, "the third scene must evict");
    assert!(stats.rebakes >= 1, "the final wave must rebake");
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for (session, index, frame) in triples {
        for value in [session, index, frame] {
            for byte in value.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
    }
    h
}

#[test]
fn fleet_schedule_matches_its_golden_stream_hash() {
    let actual = fleet_stream_hash();
    if std::env::var("UNI_RENDER_BLESS").is_ok_and(|v| v == "1") {
        println!("const GOLDEN_FLEET_STREAM: u64 = {actual:#018x};");
        return;
    }
    assert_eq!(
        actual, GOLDEN_FLEET_STREAM,
        "fleet served stream changed (routing, eviction point, or frames) — \
         if intentional, re-bless with UNI_RENDER_BLESS=1 cargo test --test \
         golden_frames -- --nocapture"
    );
}

#[test]
fn earliest_deadline_schedule_matches_its_golden_stream_hash() {
    let actual = edf_stream_hash();
    if std::env::var("UNI_RENDER_BLESS").is_ok_and(|v| v == "1") {
        println!("const GOLDEN_EDF_STREAM: u64 = {actual:#018x};");
        return;
    }
    assert_eq!(
        actual, GOLDEN_EDF_STREAM,
        "EarliestDeadline served stream changed (schedule or frames) — if \
         intentional, re-bless with UNI_RENDER_BLESS=1 cargo test --test \
         golden_frames -- --nocapture"
    );
}

#[test]
fn priority_schedule_matches_its_golden_stream_hash() {
    let actual = priority_stream_hash();
    if std::env::var("UNI_RENDER_BLESS").is_ok_and(|v| v == "1") {
        println!("const GOLDEN_PRIORITY_STREAM: u64 = {actual:#018x};");
        return;
    }
    assert_eq!(
        actual, GOLDEN_PRIORITY_STREAM,
        "Priority-policy served stream changed (schedule or frames) — if \
         intentional, re-bless with UNI_RENDER_BLESS=1 cargo test --test \
         golden_frames -- --nocapture"
    );
}

#[test]
fn every_pipeline_matches_its_golden_frame_hash() {
    let rendered = golden_frames();
    if std::env::var("UNI_RENDER_BLESS").is_ok_and(|v| v == "1") {
        println!("const GOLDEN: [(&str, u64); 6] = [");
        for ((name, _), (_, hash)) in GOLDEN.iter().zip(&rendered) {
            println!("    (\"{name}\", {hash:#018x}),");
        }
        println!("];");
        return;
    }
    for ((name, expected), (pipeline, actual)) in GOLDEN.iter().zip(&rendered) {
        assert_eq!(
            actual, expected,
            "{pipeline} ({name}) 64x64 frame hash changed — if intentional, \
             re-bless with UNI_RENDER_BLESS=1 cargo test --test golden_frames -- --nocapture"
        );
    }
}
