//! Cross-crate integration tests: scene baking → rendering → micro-op
//! decomposition → accelerator simulation → baseline comparison, end to
//! end through the public API.

use std::sync::OnceLock;
use uni_render::baselines::{all_baselines, commercial_devices};
use uni_render::microops::MicroOp;
use uni_render::prelude::*;
use uni_render::renderers::{all_renderers, render_reference, typical_renderers};

fn scene() -> &'static BakedScene {
    static SCENE: OnceLock<BakedScene> = OnceLock::new();
    SCENE.get_or_init(|| SceneSpec::demo("e2e", 1234).with_detail(0.03).bake())
}

#[test]
fn every_pipeline_renders_and_simulates() {
    let s = scene();
    let camera = s.orbit().camera_at(0.8).with_resolution(64, 48);
    let accel = Accelerator::new(AcceleratorConfig::paper());
    for renderer in all_renderers() {
        let image = renderer.render(s, &camera);
        assert_eq!(image.width(), 64, "{}", renderer.pipeline());
        let trace = renderer.trace(s, &camera);
        assert!(
            !trace.is_empty(),
            "{} trace is nonempty",
            renderer.pipeline()
        );
        let report = accel.simulate(&trace);
        assert!(report.fps() > 0.0 && report.fps().is_finite());
        assert!(report.power_w() > 0.0);
    }
}

#[test]
fn all_pipelines_produce_recognizable_images() {
    // Every pipeline's render of the same scene must correlate with the
    // ground-truth reference above a sanity PSNR (blank or garbage images
    // sit near ~5-8 dB on these scenes).
    let s = scene();
    let camera = s.orbit().camera_at(0.8).with_resolution(64, 48);
    let reference = render_reference(s.field(), &camera, 64);
    for renderer in all_renderers() {
        let image = renderer.render(s, &camera);
        let psnr = image.psnr(&reference);
        assert!(
            psnr > 10.0,
            "{} produced unrecognizable output: {psnr:.1} dB",
            renderer.pipeline()
        );
    }
}

#[test]
fn traces_cover_all_five_micro_operators_collectively() {
    let s = scene();
    let camera = s.orbit().camera_at(0.8).with_resolution(640, 480);
    let mut seen = std::collections::BTreeSet::new();
    for renderer in typical_renderers() {
        for op in renderer.trace(s, &camera).micro_ops_used() {
            seen.insert(op);
        }
    }
    for op in MicroOp::ALL {
        assert!(seen.contains(&op), "{op} never emitted by any pipeline");
    }
}

#[test]
fn commercial_devices_execute_every_trace_dedicated_only_their_own() {
    let s = scene();
    let camera = s.orbit().camera_at(0.8).with_resolution(320, 240);
    for renderer in typical_renderers() {
        let trace = renderer.trace(s, &camera);
        for device in commercial_devices() {
            assert!(
                device.execute(&trace).is_some(),
                "{} must run {}",
                device.name(),
                renderer.pipeline()
            );
        }
        let supported_count = all_baselines()
            .iter()
            .skip(4)
            .filter(|d| d.execute(&trace).is_some())
            .count();
        assert!(
            supported_count <= 1,
            "at most one dedicated accelerator supports {}",
            renderer.pipeline()
        );
    }
}

#[test]
fn simulation_is_deterministic() {
    let s = scene();
    let camera = s.orbit().camera_at(0.8).with_resolution(320, 240);
    let renderer = HashGridPipeline::default();
    let t1 = renderer.trace(s, &camera);
    let t2 = renderer.trace(s, &camera);
    assert_eq!(t1, t2, "trace generation is deterministic");
    let accel = Accelerator::new(AcceleratorConfig::paper());
    assert_eq!(accel.simulate(&t1), accel.simulate(&t2));
}

#[test]
fn trace_totals_match_manual_invocation_sums() {
    let s = scene();
    let camera = s.orbit().camera_at(0.8).with_resolution(320, 240);
    let trace = MeshPipeline::default().trace(s, &camera);
    let manual: uni_render::microops::CostVector = trace.iter().map(|i| i.cost()).sum();
    assert_eq!(manual, trace.total_cost());
    let stats = trace.stats();
    assert_eq!(stats.total(), manual);
}

#[test]
fn scaled_accelerators_never_slow_down_compute_bound_work() {
    let s = scene();
    let camera = s.orbit().camera_at(0.8).with_resolution(640, 480);
    let trace = MlpPipeline::default().trace(s, &camera);
    let base = Accelerator::new(AcceleratorConfig::paper()).simulate(&trace);
    let big = Accelerator::new(AcceleratorConfig::paper().scaled(4, 4)).simulate(&trace);
    assert!(big.cycles <= base.cycles, "4x/4x never slower");
}

#[test]
fn higher_resolution_costs_more_everywhere() {
    let s = scene();
    let lo = s.orbit().camera_at(0.8).with_resolution(320, 240);
    let hi = s.orbit().camera_at(0.8).with_resolution(1280, 960);
    let accel = Accelerator::new(AcceleratorConfig::paper());
    for renderer in typical_renderers() {
        let t_lo = renderer.trace(s, &lo);
        let t_hi = renderer.trace(s, &hi);
        let r_lo = accel.simulate(&t_lo);
        let r_hi = accel.simulate(&t_hi);
        assert!(
            r_hi.seconds > r_lo.seconds,
            "{}: 16x pixels must cost more ({} vs {})",
            renderer.pipeline(),
            r_hi.seconds,
            r_lo.seconds
        );
    }
}

#[test]
fn reconfigurable_accelerator_supports_what_dedicated_cannot() {
    // The thesis of the paper in one test: the trace of every typical
    // pipeline runs on Uni-Render, while each dedicated accelerator
    // rejects at least four of the five.
    let s = scene();
    let camera = s.orbit().camera_at(0.8).with_resolution(320, 240);
    let accel = Accelerator::new(AcceleratorConfig::paper());
    for renderer in typical_renderers() {
        let trace = renderer.trace(s, &camera);
        let report = accel.simulate(&trace);
        assert!(report.cycles > 0, "Uni-Render runs {}", renderer.pipeline());
    }
    for dedicated in all_baselines().into_iter().skip(4) {
        let rejected = typical_renderers()
            .iter()
            .filter(|r| !dedicated.supports(r.pipeline()))
            .count();
        assert_eq!(rejected, 4, "{} rejects four pipelines", dedicated.name());
    }
}
